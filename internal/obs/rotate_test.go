package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLines pushes n numbered NDJSON-ish lines through w, each one Write
// call, mirroring how json.Encoder feeds the sink.
func writeLines(t *testing.T, w *RotatingWriter, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		line := fmt.Sprintf("{\"seq\":%d,\"pad\":\"%s\"}\n", i, strings.Repeat("x", 40))
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

func TestRotatingWriterKeepsLastSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 600) // ~10 lines of ~58 bytes per segment
	if err != nil {
		t.Fatal(err)
	}
	writeLines(t, w, 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cur, old := readLines(t, path), readLines(t, path+".1")
	if len(cur) == 0 || len(old) == 0 {
		t.Fatalf("expected both segments populated, got %d + %d lines", len(cur), len(old))
	}
	// Both segments hold only whole lines that parse independently, and
	// together they hold a contiguous tail of the stream ending at line 99.
	var all []string
	all = append(all, old...)
	all = append(all, cur...)
	first := -1
	for i, line := range all {
		var ev struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("segment line %d is not valid JSON: %v (%q)", i, err, line)
		}
		if first == -1 {
			first = ev.Seq
		}
		if ev.Seq != first+i {
			t.Fatalf("line %d has seq %d, want %d (tail must be contiguous)", i, ev.Seq, first+i)
		}
	}
	if last := first + len(all) - 1; last != 99 {
		t.Fatalf("tail ends at seq %d, want 99", last)
	}
	// Each segment respects the cap.
	for _, p := range []string{path, path + ".1"} {
		if fi, err := os.Stat(p); err != nil || fi.Size() > 600 {
			t.Fatalf("segment %s is %d bytes, cap 600 (err %v)", p, fi.Size(), err)
		}
	}
}

func TestRotatingWriterUncappedNeverRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeLines(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("uncapped writer rotated: %v", err)
	}
	if got := readLines(t, path); len(got) != 50 {
		t.Fatalf("got %d lines, want 50", len(got))
	}
}

func TestRotatingWriterOversizeLineGoesOutWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	small := "{\"seq\":0}\n"
	big := fmt.Sprintf("{\"seq\":1,\"pad\":%q}\n", strings.Repeat("y", 300))
	if _, err := w.Write([]byte(small)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readLines(t, path); len(got) != 1 || got[0] != strings.TrimSuffix(big, "\n") {
		t.Fatalf("current segment = %q, want the oversize line whole", got)
	}
	if got := readLines(t, path+".1"); len(got) != 1 {
		t.Fatalf("rotated segment = %q, want the small line", got)
	}
}

// TestRecorderOverRotatingWriter wires a real Recorder to the rotating sink
// and checks the surviving trace parses as events.
func TestRecorderOverRotatingWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	w, err := NewRotatingWriter(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rec := New(w)
	for i := 0; i < 200; i++ {
		rec.Point("test", "tick", "", 0, Attrs{"i": float64(i)})
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, path)
	if len(lines) == 0 {
		t.Fatal("no events survived in the current segment")
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line does not parse: %v (%q)", err, line)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected a rotated segment: %v", err)
	}
}

// TestRotatingWriterCrashPoints abandons the writer — no Close, simulating a
// kill — after every single write of a stream long enough to rotate several
// times, and asserts the crash-safety contract: at no crash point does a
// published name (path or path.1) hold a truncated or torn segment. Only the
// hidden temp may be incomplete, and a successor writer sweeps it.
func TestRotatingWriterCrashPoints(t *testing.T) {
	const writes = 40
	for k := 1; k <= writes; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "trace.ndjson")
		w, err := NewRotatingWriter(path, 150) // ~2-3 lines per segment
		if err != nil {
			t.Fatal(err)
		}
		writeLines(t, w, 0, k)
		// Crash: walk away without Close. Published names must be intact.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("crash after write %d: %s exists before Close (err %v); the live segment leaked to a published name", k, path, err)
		}
		if data, err := os.ReadFile(path + ".1"); err == nil {
			if len(data) == 0 || data[len(data)-1] != '\n' {
				t.Fatalf("crash after write %d: rotated segment does not end in newline: %q", k, data)
			}
			for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
				var ev struct {
					Seq int `json:"seq"`
				}
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("crash after write %d: rotated segment line %d is torn: %v (%q)", k, i, err, line)
				}
			}
		} else if !os.IsNotExist(err) {
			t.Fatal(err)
		}
		// The abandoned temp is swept by the next run's writer.
		w2, err := NewRotatingWriter(path, 150)
		if err != nil {
			t.Fatal(err)
		}
		temps, _ := filepath.Glob(filepath.Join(dir, ".trace.ndjson.seg*"))
		if len(temps) != 1 {
			t.Fatalf("crash after write %d: %d temps after restart, want 1 (the new live segment): %v", k, len(temps), temps)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRotatingWriterSweepsStaleSegments: a fresh writer must not let a prior
// run's published segments masquerade as this run's trace.
func TestRotatingWriterSweepsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.ndjson")
	for _, p := range []string{path, path + ".1"} {
		if err := os.WriteFile(p, []byte("{\"seq\":-1}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w, err := NewRotatingWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeLines(t, w, 0, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("stale rotated segment survived New: %v", err)
	}
	if got := readLines(t, path); len(got) != 3 {
		t.Fatalf("got %d lines, want 3 fresh ones", len(got))
	}
}
