package obs

import (
	"fmt"
	"strings"
	"time"
)

// Metrics is the aggregated, JSON-serializable side of a Recorder: monotonic
// counters, completed-span counts and cumulative wall time per phase, and
// fixed-bucket histograms. Two snapshots merge by field-wise addition, which
// is what makes checkpoint/resume telemetry equal an uninterrupted run's.
type Metrics struct {
	// Counters holds monotonic counters. Span outcomes are folded in as
	// "<phase>:<outcome>" so they reconcile against the engines' own
	// aggregate counters.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Spans counts completed spans per phase.
	Spans map[string]int64 `json:"spans,omitempty"`
	// PhaseNS is cumulative wall time per phase in nanoseconds. Wall-clock
	// fields are the only metrics expected to differ between an interrupted+
	// resumed run and an uninterrupted one.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// Histograms holds fixed-bucket value distributions. Per-phase duration
	// histograms use the "phase_ms:" name prefix (milliseconds).
	Histograms map[string]*Histogram `json:"histograms,omitempty"`
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		Counters:   make(map[string]int64),
		Spans:      make(map[string]int64),
		PhaseNS:    make(map[string]int64),
		Histograms: make(map[string]*Histogram),
	}
}

// Histogram is a fixed-bucket histogram: Counts[i] samples fell at or below
// Bounds[i], Counts[len(Bounds)] is the overflow bucket.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last = overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// NewHistogram returns an empty histogram over ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if h.Count == 1 || v < h.Min {
		h.Min = v
	}
	if h.Count == 1 || v > h.Max {
		h.Max = v
	}
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly inside the bucket that crosses the target rank —
// the standard fixed-bucket estimator, so a rank landing exactly on a bucket
// boundary returns that bound. Samples in the overflow bucket pin the
// estimate to the observed Max (the only upper bound known for them); with
// no samples Quantile returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, n := range h.Counts {
		prev := cum
		cum += n
		if float64(cum) < rank || n == 0 {
			continue
		}
		if i == len(h.Bounds) {
			return h.Max
		}
		lo := h.Min
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if lo > hi { // Min above the bucket's bound: degenerate, clamp
			lo = hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(n)
	}
	return h.Max
}

// Merge adds another histogram's samples; bucket bounds must match.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: histogram bounds mismatch: %d vs %d buckets", len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("obs: histogram bound %d mismatch: %g vs %g", i, b, o.Bounds[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	if o.Count > 0 {
		if h.Count == 0 || o.Min < h.Min {
			h.Min = o.Min
		}
		if h.Count == 0 || o.Max > h.Max {
			h.Max = o.Max
		}
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

func (h *Histogram) clone() *Histogram {
	c := *h
	c.Bounds = append([]float64(nil), h.Bounds...)
	c.Counts = append([]int64(nil), h.Counts...)
	return &c
}

// Bucket bounds per metric family. Every build shares this registry, so
// histograms from a checkpoint always merge cleanly into a fresh Recorder.
var (
	backtrackBounds  = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}
	generationBounds = []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64}
	seqLenBounds     = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}
	durationMSBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	genericBounds    = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
)

// boundsFor picks the bucket bounds for a histogram name.
func boundsFor(name string) []float64 {
	switch {
	case strings.HasPrefix(name, "phase_ms:"):
		return durationMSBounds
	case name == "backtracks":
		return backtrackBounds
	case name == "ga_generations":
		return generationBounds
	case name == "seq_len":
		return seqLenBounds
	}
	return genericBounds
}

func (m *Metrics) addCounter(name string, delta int64) {
	if m.Counters == nil {
		m.Counters = make(map[string]int64)
	}
	m.Counters[name] += delta
}

func (m *Metrics) observe(name string, v float64) {
	if m.Histograms == nil {
		m.Histograms = make(map[string]*Histogram)
	}
	h := m.Histograms[name]
	if h == nil {
		h = NewHistogram(boundsFor(name))
		m.Histograms[name] = h
	}
	h.Observe(v)
}

func (m *Metrics) addSpan(phase, outcome string, d time.Duration) {
	if m.Spans == nil {
		m.Spans = make(map[string]int64)
	}
	if m.PhaseNS == nil {
		m.PhaseNS = make(map[string]int64)
	}
	m.Spans[phase]++
	m.PhaseNS[phase] += int64(d)
	if outcome != "" {
		m.addCounter(phase+":"+outcome, 1)
	}
	m.observe("phase_ms:"+phase, float64(d.Microseconds())/1000)
}

// Clone returns a deep copy.
func (m *Metrics) Clone() *Metrics {
	if m == nil {
		return nil
	}
	c := NewMetrics()
	for k, v := range m.Counters {
		c.Counters[k] = v
	}
	for k, v := range m.Spans {
		c.Spans[k] = v
	}
	for k, v := range m.PhaseNS {
		c.PhaseNS[k] = v
	}
	for k, h := range m.Histograms {
		c.Histograms[k] = h.clone()
	}
	return c
}

// Merge adds another metrics set into this one. The first histogram bounds
// mismatch aborts with an error (remaining fields are still summed for the
// histograms already merged; callers treat the error as fatal).
func (m *Metrics) Merge(o *Metrics) error {
	if o == nil {
		return nil
	}
	for k, v := range o.Counters {
		m.addCounter(k, v)
	}
	if m.Spans == nil {
		m.Spans = make(map[string]int64)
	}
	for k, v := range o.Spans {
		m.Spans[k] += v
	}
	if m.PhaseNS == nil {
		m.PhaseNS = make(map[string]int64)
	}
	for k, v := range o.PhaseNS {
		m.PhaseNS[k] += v
	}
	if m.Histograms == nil {
		m.Histograms = make(map[string]*Histogram)
	}
	for k, h := range o.Histograms {
		mine := m.Histograms[k]
		if mine == nil {
			m.Histograms[k] = h.clone()
			continue
		}
		if err := mine.Merge(h); err != nil {
			return fmt.Errorf("%v (histogram %q)", err, k)
		}
	}
	return nil
}
