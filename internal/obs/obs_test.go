package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil Recorder must be fully inert: every method callable, zero effect.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Counter("x", 1)
	r.Observe("backtracks", 3)
	r.Point("p", "n", "f", 1, Attrs{"a": 1})
	sp := r.StartSpan("phase", "fault", 2)
	sp.End("ok", nil)
	if r.MetricsSnapshot() != nil {
		t.Error("nil recorder returned a snapshot")
	}
	if err := r.MergeMetrics(NewMetrics()); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	if r.Err() != nil {
		t.Errorf("nil Err: %v", r.Err())
	}
	// The zero Span is inert too (the shape guard/recover paths leave behind).
	var zero Span
	zero.End("ignored", Attrs{"x": 1})
}

func TestEventStreamIsParseableNDJSON(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Point("run", "pass_end", "", 1, Attrs{"detected": 10})
	sp := r.StartSpan("excite_prop", "G1 s-a-0", 2)
	sp.End("success", Attrs{"backtracks": 3})
	r.Point("ga_justify", "generation", "G1 s-a-0", 2, Attrs{"gen": 1, "best": 4.5})

	out := buf.String()
	var prev uint64
	n := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", n, err, sc.Text())
		}
		if e.Seq <= prev {
			t.Errorf("seq not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		n++
	}
	if n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
	for _, want := range []string{`"ev":"span"`, `"ev":"point"`, `"phase":"excite_prop"`, `"name":"success"`, `"fault":"G1 s-a-0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("stream missing %s:\n%s", want, out)
		}
	}
}

func TestSpanAggregation(t *testing.T) {
	r := New(nil)
	// Deterministic clock: each call advances 1ms.
	var tick int64
	r.now = func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("det_justify", "", 1)
		if i == 2 {
			sp.End("found", nil)
		} else {
			sp.End("unjustified", nil)
		}
	}
	m := r.MetricsSnapshot()
	if m.Spans["det_justify"] != 3 {
		t.Errorf("spans = %d, want 3", m.Spans["det_justify"])
	}
	if m.Counters["det_justify:found"] != 1 || m.Counters["det_justify:unjustified"] != 2 {
		t.Errorf("outcome counters wrong: %v", m.Counters)
	}
	if m.PhaseNS["det_justify"] != int64(3*time.Millisecond) {
		t.Errorf("phase time = %d ns, want 3ms", m.PhaseNS["det_justify"])
	}
	h := m.Histograms["phase_ms:det_justify"]
	if h == nil || h.Count != 3 {
		t.Fatalf("duration histogram missing or wrong: %+v", h)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0, 1, 5, 10, 11, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1} // <=1: {0,1}; <=10: {5,10}; <=100: {11}; over: {1000}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Count != 6 || h.Min != 0 || h.Max != 1000 {
		t.Errorf("stats wrong: count=%d min=%g max=%g", h.Count, h.Min, h.Max)
	}
	if got := h.Mean(); got != 1027.0/6 {
		t.Errorf("mean = %g", got)
	}
}

// Merging a snapshot into a live recorder is the resume path: totals add.
func TestMergeMetricsIsAdditive(t *testing.T) {
	a := New(nil)
	a.Counter("excite_prop:success", 5)
	a.Observe("backtracks", 10)
	sp := a.StartSpan("target", "", 1)
	sp.End("detected", nil)

	b := New(nil)
	b.Counter("excite_prop:success", 7)
	b.Observe("backtracks", 99999) // overflow bucket
	if err := b.MergeMetrics(a.MetricsSnapshot()); err != nil {
		t.Fatal(err)
	}
	m := b.MetricsSnapshot()
	if m.Counters["excite_prop:success"] != 12 {
		t.Errorf("merged counter = %d, want 12", m.Counters["excite_prop:success"])
	}
	if m.Spans["target"] != 1 || m.Counters["target:detected"] != 1 {
		t.Errorf("merged spans wrong: %v / %v", m.Spans, m.Counters)
	}
	h := m.Histograms["backtracks"]
	if h.Count != 2 || h.Min != 10 || h.Max != 99999 {
		t.Errorf("merged histogram wrong: %+v", h)
	}

	// Mismatched bounds are refused, not silently mis-binned.
	bad := NewMetrics()
	bad.Histograms["backtracks"] = NewHistogram([]float64{1, 2})
	bad.Histograms["backtracks"].Observe(1)
	if err := b.MergeMetrics(bad); err == nil {
		t.Error("bounds mismatch accepted")
	}
}

// Snapshot must be a deep copy: mutating the live recorder afterwards must
// not change an already-taken snapshot (checkpoints depend on this).
func TestSnapshotIsDeepCopy(t *testing.T) {
	r := New(nil)
	r.Counter("c", 1)
	r.Observe("backtracks", 5)
	snap := r.MetricsSnapshot()
	r.Counter("c", 10)
	r.Observe("backtracks", 6)
	if snap.Counters["c"] != 1 {
		t.Errorf("snapshot counter mutated: %d", snap.Counters["c"])
	}
	if snap.Histograms["backtracks"].Count != 1 {
		t.Errorf("snapshot histogram mutated: %d", snap.Histograms["backtracks"].Count)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	r := New(nil)
	r.Counter("c", 3)
	r.Observe("seq_len", 17)
	r.StartSpan("audit", "", 0).End("clean", nil)
	blob, err := json.Marshal(r.MetricsSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Spans["audit"] != 1 || back.Histograms["seq_len"].Count != 1 {
		t.Errorf("round trip lost data: %s", blob)
	}
}

func TestConcurrentRecording(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("n", 1)
				r.Observe("backtracks", float64(i))
				r.StartSpan("p", "", 0).End("ok", nil)
			}
		}()
	}
	wg.Wait()
	m := r.MetricsSnapshot()
	if m.Counters["n"] != 800 || m.Spans["p"] != 800 || m.Histograms["backtracks"].Count != 800 {
		t.Errorf("lost updates: %v %v", m.Counters, m.Spans)
	}
	// Every concurrent event line must still be standalone-parseable.
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt line: %v", err)
		}
		lines++
	}
	if lines != 800 {
		t.Errorf("got %d event lines, want 800", lines)
	}
}

// A failing sink stops the event stream but never the metrics.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errSink
	}
	return len(p), nil
}

var errSink = errors.New("sink full")

func TestSinkErrorStopsEventsKeepsMetrics(t *testing.T) {
	r := New(&failWriter{})
	for i := 0; i < 5; i++ {
		r.Point("p", "n", "", 0, nil)
	}
	if r.Err() == nil {
		t.Error("sink error not surfaced")
	}
	r.Counter("after", 1)
	if r.MetricsSnapshot().Counters["after"] != 1 {
		t.Error("metrics stopped with the sink")
	}
}

// Forked children buffer events and metrics privately; adoption folds them
// into the parent in order with parent-assigned sequence numbers, and a
// dropped child leaves no trace.
func TestForkAdoptCommitsChildInOrder(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.Counter("before", 1)

	kept := r.Fork()
	kept.Counter("child", 2)
	sp := kept.StartSpan("excite_prop", "G1 s-a-0", 1)
	sp.End("success", nil)
	kept.Point("ga_justify", "generation", "G1 s-a-0", 1, nil)

	dropped := r.Fork()
	dropped.Counter("child", 100)
	dropped.Point("ga_justify", "generation", "G9 s-a-1", 1, nil)

	// Nothing from either child is visible before adoption.
	if got := r.MetricsSnapshot().Counters["child"]; got != 0 {
		t.Fatalf("child counter leaked before adoption: %d", got)
	}
	if err := r.Adopt(kept); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	r.Counter("after", 1)
	// dropped is discarded without adoption: no trace.

	m := r.MetricsSnapshot()
	if m.Counters["child"] != 2 {
		t.Errorf("child counter = %d, want 2", m.Counters["child"])
	}
	if m.Spans["excite_prop"] != 1 {
		t.Errorf("excite_prop spans = %d, want 1", m.Spans["excite_prop"])
	}
	var prev uint64
	n := 0
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		if e.Seq <= prev {
			t.Errorf("seq not strictly increasing: %d after %d", e.Seq, prev)
		}
		if e.Fault == "G9 s-a-1" {
			t.Errorf("dropped child's event reached the parent stream: %s", sc.Text())
		}
		prev = e.Seq
		n++
	}
	if n != 2 { // kept child's span + point; counters emit no events
		t.Fatalf("got %d events, want 2", n)
	}
}

// Fork is nil-safe end to end: a nil recorder forks a nil child, and both
// sides of Adopt tolerate nil.
func TestForkAdoptNilSafe(t *testing.T) {
	var r *Recorder
	c := r.Fork()
	if c != nil {
		t.Fatalf("nil recorder forked a non-nil child")
	}
	c.Counter("x", 1)
	if err := r.Adopt(c); err != nil {
		t.Fatalf("nil adopt: %v", err)
	}
	live := New(nil)
	if err := live.Adopt(nil); err != nil {
		t.Fatalf("adopt nil child: %v", err)
	}
}

// Children of a sink-less recorder skip event buffering but still carry
// metrics, and concurrent children never corrupt the parent.
func TestForkConcurrentChildren(t *testing.T) {
	r := New(nil)
	var wg sync.WaitGroup
	children := make([]*Recorder, 8)
	for i := range children {
		children[i] = r.Fork()
	}
	for _, c := range children {
		wg.Add(1)
		go func(c *Recorder) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Counter("n", 1)
				c.Observe("seq_len", float64(j%7))
			}
		}(c)
	}
	wg.Wait()
	for _, c := range children {
		if err := r.Adopt(c); err != nil {
			t.Fatalf("adopt: %v", err)
		}
	}
	m := r.MetricsSnapshot()
	if m.Counters["n"] != 800 {
		t.Errorf("counter n = %d, want 800", m.Counters["n"])
	}
	if m.Histograms["seq_len"].Count != 800 {
		t.Errorf("histogram count = %d, want 800", m.Histograms["seq_len"].Count)
	}
}
