package promexport

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series line: a metric name, its label set, and the
// scraped value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for one label name ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// Scrape is a parsed exposition: samples in document order plus the declared
// family types.
type Scrape struct {
	Samples []Sample
	// Types maps family name to its declared TYPE (counter, gauge, histogram).
	Types map[string]string
}

// Value returns the value of the first sample matching name and all given
// label constraints, with ok=false when no sample matches.
func (sc *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Parse reads a Prometheus text-format exposition and validates it: metric
// and label names must be legal, label values properly quoted, values float-
// parseable, samples must follow a TYPE declaration for their family, and
// histogram families must have cumulative buckets ending in a +Inf bucket
// that equals _count. It is the verification half of Write — tests and the
// CI scrape assertion run every exposition through it.
func Parse(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: map[string]string{}}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := br.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := sc.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if sc.Types[familyOf(s.Name)] == "" {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE declaration", lineNo, s.Name)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if err := sc.validateHistograms(); err != nil {
		return nil, err
	}
	return sc, nil
}

func (sc *Scrape) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("illegal metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := sc.Types[name]; ok && prev != typ {
			return fmt.Errorf("family %q re-declared as %s (was %s)", name, typ, prev)
		}
		sc.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("illegal metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at s[0]=='{' and returns
// the index one past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		name := s[i : i+eq]
		if !validLabelName(name) {
			return 0, fmt.Errorf("illegal label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", name)
		}
		val, n, err := parseQuoted(s[i:])
		if err != nil {
			return 0, fmt.Errorf("label %q: %v", name, err)
		}
		out[name] = val
		i += n
	}
}

// parseQuoted parses a leading double-quoted string with \\, \", and \n
// escapes, returning the unescaped value and the bytes consumed.
func parseQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips the histogram/summary sample suffixes so _bucket/_sum/
// _count lines resolve to their declared family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

// validateHistograms checks every declared histogram family: buckets must be
// cumulative (non-decreasing in le order), must end with le="+Inf", and the
// +Inf bucket must equal the series' _count.
func (sc *Scrape) validateHistograms() error {
	type key struct{ family, labels string }
	buckets := map[key][]Sample{}
	counts := map[key]float64{}
	for _, s := range sc.Samples {
		fam := familyOf(s.Name)
		if sc.Types[fam] != "histogram" {
			continue
		}
		k := key{fam, labelsMinusLE(s.Labels)}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.Name, "_count"):
			counts[k] = s.Value
		}
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool {
			a, _ := parseFloat(bs[i].Label("le"))
			b, _ := parseFloat(bs[j].Label("le"))
			return a < b
		})
		prev := math.Inf(-1)
		last := bs[len(bs)-1]
		if last.Label("le") != "+Inf" {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", k.family, k.labels)
		}
		for _, b := range bs {
			if b.Value < prev {
				return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%q", k.family, k.labels, b.Label("le"))
			}
			prev = b.Value
		}
		if c, ok := counts[k]; !ok || c != last.Value {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", k.family, k.labels, last.Value, c)
		}
	}
	return nil
}

func labelsMinusLE(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
