// Package promexport renders obs.Metrics snapshots in the Prometheus text
// exposition format (version 0.0.4), the lingua franca every scrape-based
// monitoring stack speaks. The exporter is a pure formatter over an immutable
// snapshot — no registries, no background goroutines — so servers compose it
// with whatever liveness gauges they own (queue depth, scheduler state) at
// scrape time.
//
// Naming conventions (documented in DESIGN.md §10):
//
//   - obs counters become one label-keyed family,
//     gahitec_counter_total{counter="<name>"} — counter names like
//     "target:detected" contain colons and stay readable as label values
//     where they would be illegal (or misleading) as metric names.
//   - per-phase span counts become gahitec_spans_total{phase="..."} and
//     cumulative phase wall time gahitec_phase_wall_seconds_total{phase="..."}.
//   - "phase_ms:<phase>" histograms share one family,
//     gahitec_phase_duration_ms{phase="..."}; every other histogram exports
//     as gahitec_<name>. Buckets are cumulative with a terminal +Inf, plus
//     _sum and _count, exactly as Prometheus histograms require.
//   - caller-supplied gauges export under their given (sanitized) names.
package promexport

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gahitec/internal/obs"
)

// Gauge is one instantaneous value a server contributes alongside the obs
// snapshot: queue depths, worker counts, degradation levels. Gauges with the
// same Name form one family and must share the same Help text.
type Gauge struct {
	Name   string
	Help   string
	Labels map[string]string
	Value  float64
}

// Write renders the snapshot and gauges as Prometheus text format. Either m
// or gauges may be nil/empty. Output ordering is deterministic (families and
// series sorted by name/labels) so scrapes diff cleanly in tests and goldens.
func Write(w io.Writer, m *obs.Metrics, gauges []Gauge) error {
	bw := bufio.NewWriter(w)
	writeGauges(bw, gauges)
	if m != nil {
		writeCounters(bw, m)
		writeSpans(bw, m)
		writeHistograms(bw, m)
	}
	return bw.Flush()
}

func writeGauges(w *bufio.Writer, gauges []Gauge) {
	byFamily := map[string][]Gauge{}
	for _, g := range gauges {
		name := sanitizeName(g.Name)
		byFamily[name] = append(byFamily[name], g)
	}
	for _, name := range sortedKeys(byFamily) {
		fam := byFamily[name]
		if fam[0].Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(fam[0].Help))
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		lines := make([]string, 0, len(fam))
		for _, g := range fam {
			lines = append(lines, name+labelString(g.Labels)+" "+formatValue(g.Value))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
}

func writeCounters(w *bufio.Writer, m *obs.Metrics) {
	if len(m.Counters) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP gahitec_counter_total Monotonic engine counters, keyed by obs counter name.")
	fmt.Fprintln(w, "# TYPE gahitec_counter_total counter")
	for _, k := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "gahitec_counter_total{counter=\"%s\"} %d\n", escapeLabel(k), m.Counters[k])
	}
}

func writeSpans(w *bufio.Writer, m *obs.Metrics) {
	if len(m.Spans) > 0 {
		fmt.Fprintln(w, "# HELP gahitec_spans_total Completed spans per phase.")
		fmt.Fprintln(w, "# TYPE gahitec_spans_total counter")
		for _, k := range sortedKeys(m.Spans) {
			fmt.Fprintf(w, "gahitec_spans_total{phase=\"%s\"} %d\n", escapeLabel(k), m.Spans[k])
		}
	}
	if len(m.PhaseNS) > 0 {
		fmt.Fprintln(w, "# HELP gahitec_phase_wall_seconds_total Cumulative wall time per phase.")
		fmt.Fprintln(w, "# TYPE gahitec_phase_wall_seconds_total counter")
		for _, k := range sortedKeys(m.PhaseNS) {
			fmt.Fprintf(w, "gahitec_phase_wall_seconds_total{phase=\"%s\"} %s\n",
				escapeLabel(k), formatValue(float64(m.PhaseNS[k])/1e9))
		}
	}
}

// phasePrefix is the obs histogram-name prefix that folds into the shared
// per-phase duration family.
const phasePrefix = "phase_ms:"

func writeHistograms(w *bufio.Writer, m *obs.Metrics) {
	// Group histogram names into families: every "phase_ms:<phase>" series
	// shares the gahitec_phase_duration_ms family (label phase=<phase>);
	// anything else is its own label-less family.
	type series struct {
		labels map[string]string
		h      *obs.Histogram
	}
	families := map[string][]series{}
	for name, h := range m.Histograms {
		if strings.HasPrefix(name, phasePrefix) {
			families["gahitec_phase_duration_ms"] = append(families["gahitec_phase_duration_ms"],
				series{labels: map[string]string{"phase": strings.TrimPrefix(name, phasePrefix)}, h: h})
			continue
		}
		families["gahitec_"+sanitizeName(name)] = append(families["gahitec_"+sanitizeName(name)], series{h: h})
	}
	for _, fam := range sortedKeys(families) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool {
			return labelString(ss[i].labels) < labelString(ss[j].labels)
		})
		for _, s := range ss {
			writeHistogramSeries(w, fam, s.labels, s.h)
		}
	}
}

func writeHistogramSeries(w *bufio.Writer, fam string, labels map[string]string, h *obs.Histogram) {
	// obs histograms store per-bucket counts; Prometheus buckets are
	// cumulative, ending in the mandatory +Inf bucket equal to _count.
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam, labelStringWith(labels, "le", formatValue(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam, labelStringWith(labels, "le", "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam, labelString(labels), formatValue(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam, labelString(labels), h.Count)
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Colons are reserved for recording rules
// by convention, so they are rewritten too.
func sanitizeName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapeLabel(s string) string {
	// %q handles backslash and quote escaping; Prometheus additionally wants
	// newlines as \n, which %q already produces.
	return strings.TrimSuffix(strings.TrimPrefix(strconv.Quote(s), `"`), `"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func labelString(labels map[string]string) string {
	return labelStringWith(labels, "", "")
}

// labelStringWith renders {k="v",...} with an optional extra pre-escaped
// label (used for le="..." bucket bounds). Returns "" for no labels.
func labelStringWith(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, k := range sortedKeys(labels) {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", sanitizeLabelName(k), escapeLabel(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", extraKey, extraVal))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func sanitizeLabelName(s string) string {
	// Label names share the metric-name alphabet minus colons.
	return strings.ReplaceAll(sanitizeName(s), ":", "_")
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
