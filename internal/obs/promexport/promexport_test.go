package promexport

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gahitec/internal/obs"
)

// snapshot builds a Metrics with every family kind populated, exercising the
// label-escaping and histogram paths.
func snapshot(t *testing.T) *obs.Metrics {
	t.Helper()
	var buf bytes.Buffer
	r := obs.New(&buf)
	r.Counter("target:detected", 5)
	r.Counter(`odd"name\with specials`, 1)
	r.Observe("backtracks", 3)
	r.Observe("backtracks", 7000)
	sp := r.StartSpan("target", "G1 s-a-0", 1)
	sp.End("detected", nil)
	sp = r.StartSpan("ga", "", 1)
	sp.End("improved", nil)
	return r.MetricsSnapshot()
}

func TestWriteParseRoundTrip(t *testing.T) {
	gauges := []Gauge{
		{Name: "gahitec_jobs", Help: "Jobs by state.", Labels: map[string]string{"state": "queued"}, Value: 3},
		{Name: "gahitec_jobs", Labels: map[string]string{"state": "running"}, Value: 1},
		{Name: "gahitec_scheduler_workers", Help: "Granted worker slots.", Value: 4},
	}
	var out bytes.Buffer
	if err := Write(&out, snapshot(t), gauges); err != nil {
		t.Fatalf("Write: %v", err)
	}
	sc, err := Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("Parse rejected our own output:\n%s\nerror: %v", out.String(), err)
	}

	// 5 from the explicit Counter, plus 1 folded in by the span outcome
	// ("target" span ending "detected").
	if v, ok := sc.Value("gahitec_counter_total", map[string]string{"counter": "target:detected"}); !ok || v != 6 {
		t.Errorf("counter target:detected = %g, ok=%v; want 6", v, ok)
	}
	// Span outcomes fold into the same counter family.
	if v, ok := sc.Value("gahitec_counter_total", map[string]string{"counter": "ga:improved"}); !ok || v != 1 {
		t.Errorf("counter ga:improved = %g, ok=%v; want 1", v, ok)
	}
	if v, ok := sc.Value(`gahitec_counter_total`, map[string]string{"counter": `odd"name\with specials`}); !ok || v != 1 {
		t.Errorf("escaped counter = %g, ok=%v; want round-tripped value 1", v, ok)
	}
	if v, ok := sc.Value("gahitec_jobs", map[string]string{"state": "queued"}); !ok || v != 3 {
		t.Errorf("gauge jobs{queued} = %g, ok=%v; want 3", v, ok)
	}
	if v, ok := sc.Value("gahitec_spans_total", map[string]string{"phase": "target"}); !ok || v != 1 {
		t.Errorf("spans{target} = %g, ok=%v; want 1", v, ok)
	}
	if _, ok := sc.Value("gahitec_phase_wall_seconds_total", map[string]string{"phase": "ga"}); !ok {
		t.Error("missing phase wall time series for ga")
	}

	// Histograms: per-phase durations share one family; backtracks is its own.
	if sc.Types["gahitec_phase_duration_ms"] != "histogram" {
		t.Errorf("phase duration family type = %q", sc.Types["gahitec_phase_duration_ms"])
	}
	if v, ok := sc.Value("gahitec_backtracks_count", nil); !ok || v != 2 {
		t.Errorf("backtracks _count = %g, ok=%v; want 2", v, ok)
	}
	if v, ok := sc.Value("gahitec_backtracks_sum", nil); !ok || v != 7003 {
		t.Errorf("backtracks _sum = %g, ok=%v; want 7003", v, ok)
	}
	if v, ok := sc.Value("gahitec_backtracks_bucket", map[string]string{"le": "+Inf"}); !ok || v != 2 {
		t.Errorf("backtracks +Inf bucket = %g, ok=%v; want 2", v, ok)
	}
	if _, ok := sc.Value("gahitec_phase_duration_ms_bucket", map[string]string{"phase": "target", "le": "+Inf"}); !ok {
		t.Error("missing +Inf bucket for phase_duration_ms{phase=target}")
	}
}

func TestWriteDeterministicOrder(t *testing.T) {
	m := snapshot(t)
	var a, b bytes.Buffer
	if err := Write(&a, m, nil); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, m.Clone(), nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two writes of the same snapshot differ")
	}
}

func TestWriteEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := Write(&out, nil, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty exposition not empty: %q", out.String())
	}
	if _, err := Parse(strings.NewReader("")); err != nil {
		t.Errorf("Parse of empty input: %v", err)
	}
}

func TestGaugeInfinity(t *testing.T) {
	var out bytes.Buffer
	if err := Write(&out, nil, []Gauge{{Name: "g", Value: math.Inf(1)}}); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("g", nil); !ok || !math.IsInf(v, 1) {
		t.Errorf("g = %g, ok=%v; want +Inf", v, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, input := range map[string]string{
		"no type decl":        "foo 1\n",
		"bad metric name":     "# TYPE 9foo gauge\n9foo 1\n",
		"bad value":           "# TYPE foo gauge\nfoo one\n",
		"unterminated labels": "# TYPE foo gauge\nfoo{a=\"b 1\n",
		"unquoted label":      "# TYPE foo gauge\nfoo{a=b} 1\n",
		"unknown type":        "# TYPE foo widget\nfoo 1\n",
		"colon in label name": "# TYPE foo gauge\nfoo{a:b=\"c\"} 1\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf bucket != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	} {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Parse accepted malformed input %q", name, input)
		}
	}
}

func TestParseAcceptsTimestampAndComments(t *testing.T) {
	input := "# scraped by test\n# TYPE foo gauge\nfoo{a=\"b\"} 1.5 1712345678\n"
	sc, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := sc.Value("foo", map[string]string{"a": "b"}); !ok || v != 1.5 {
		t.Errorf("foo = %g, ok=%v; want 1.5", v, ok)
	}
}
