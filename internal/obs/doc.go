// Package obs is the run-telemetry layer of the test generator: a nil-safe,
// concurrency-safe Recorder that captures a structured NDJSON event stream
// (per-fault spans for excitation/propagation, GA and deterministic state
// justification, fault-simulation grading, audit replay, and quarantine/
// retry, plus per-generation GA convergence points) and aggregated metrics
// (monotonic counters, fixed-bucket histograms, and per-phase wall time).
//
// The Recorder is threaded through configuration exactly like runctl.Hooks:
// a nil *Recorder is inert and every method is safe to call on it, so the
// engines pay one nil check when telemetry is disabled. Metrics snapshots
// are plain JSON and mergeable, which is how a checkpointed run's telemetry
// survives an interrupt: the snapshot stored in the checkpoint journal is
// merged into the resumed process's fresh Recorder, and the resumed run's
// final metrics equal an uninterrupted run's (for the deterministic
// quantities; wall-clock timings differ by construction).
//
// Event streams are analyzed offline with cmd/tracestat, which renders a
// per-phase time/cost breakdown from a trace file.
package obs
