package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Merging histograms with different bucket layouts must fail loudly — a
// silent field-wise add over mismatched bounds would corrupt both streams.
func TestMergeMismatchedHistogramBounds(t *testing.T) {
	a := NewMetrics()
	a.Histograms["h"] = NewHistogram([]float64{1, 2, 3})
	a.Histograms["h"].Observe(1)

	count := NewMetrics()
	count.Histograms["h"] = NewHistogram([]float64{1, 2})
	if err := a.Merge(count); err == nil {
		t.Fatal("merge with different bucket count succeeded")
	}

	values := NewMetrics()
	values.Histograms["h"] = NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(values); err == nil {
		t.Fatal("merge with different bucket bounds succeeded")
	}
	// The failed merges must not have disturbed the original counts.
	if got := a.Histograms["h"].Count; got != 1 {
		t.Fatalf("count after failed merges = %d, want 1", got)
	}
}

// An empty snapshot merged into a populated one is a no-op, and a populated
// snapshot merged into an empty one clones everything — including Min/Max,
// which naive zero-value merging would clobber.
func TestMergeEmptyAndPopulated(t *testing.T) {
	pop := NewMetrics()
	pop.addCounter("c", 7)
	pop.observe("backtracks", 5)
	pop.observe("backtracks", 100)

	empty := NewMetrics()
	if err := pop.Merge(empty); err != nil {
		t.Fatalf("empty-into-populated: %v", err)
	}
	h := pop.Histograms["backtracks"]
	if h.Count != 2 || h.Min != 5 || h.Max != 100 {
		t.Fatalf("populated disturbed by empty merge: count=%d min=%g max=%g", h.Count, h.Min, h.Max)
	}

	// Merging an empty histogram of the same family is also a no-op on
	// Min/Max: a zero-count histogram has no samples to contribute.
	emptyH := NewMetrics()
	emptyH.Histograms["backtracks"] = NewHistogram(backtrackBounds)
	if err := pop.Merge(emptyH); err != nil {
		t.Fatalf("empty-histogram merge: %v", err)
	}
	if h.Count != 2 || h.Min != 5 || h.Max != 100 {
		t.Fatalf("min/max clobbered by empty histogram: count=%d min=%g max=%g", h.Count, h.Min, h.Max)
	}

	fresh := NewMetrics()
	if err := fresh.Merge(pop); err != nil {
		t.Fatalf("populated-into-empty: %v", err)
	}
	if fresh.Counters["c"] != 7 {
		t.Fatalf("counter = %d, want 7", fresh.Counters["c"])
	}
	g := fresh.Histograms["backtracks"]
	if g.Count != 2 || g.Min != 5 || g.Max != 100 {
		t.Fatalf("clone into empty lost samples: count=%d min=%g max=%g", g.Count, g.Min, g.Max)
	}
	// The clone must be deep: mutating the destination must not reach back.
	g.Observe(1)
	if h.Count != 2 {
		t.Fatal("merge aliased the source histogram's counts")
	}
}

func TestQuantileAtBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// Four samples, one per bucket edge region: ranks land exactly on
	// cumulative bucket boundaries for q = 0.25, 0.5, 0.75.
	for _, v := range []float64{10, 20, 30, 40} {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.25, 10}, // rank 1 = exactly the first bucket's upper bound
		{0.5, 20},  // rank 2 = exactly the second bound
		{0.75, 30}, // rank 3 = exactly the third bound
		{1.0, 40},  // overflow bucket pins to the observed Max
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// Interpolation inside a bucket: two samples in (10,20]; the median rank
	// falls halfway through that bucket.
	h2 := NewHistogram([]float64{10, 20})
	h2.Observe(12)
	h2.Observe(18)
	if got := h2.Quantile(0.5); got != 15 {
		t.Errorf("interpolated median = %g, want 15", got)
	}

	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
}

// Every event line of a run carries the run correlation ID, forked children
// included: a child buffers its events unstamped and the adopting parent
// stamps its own ID, so a fleet's mixed trace slices cleanly by run.
func TestRunIDOnEveryEventLine(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.SetRunID("r0123456789abcdef")
	r.Point("run", "start", "", 0, nil)
	c := r.Fork()
	sp := c.StartSpan("target", "G1 s-a-0", 1)
	sp.End("detected", nil)
	if err := r.Adopt(c); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	sp = r.StartSpan("verify", "", 1)
	sp.End("accept", nil)

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Run != "r0123456789abcdef" {
			t.Fatalf("event %d run = %q, want the recorder's run ID", n, e.Run)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
	if r.RunID() != "r0123456789abcdef" {
		t.Fatalf("RunID() = %q", r.RunID())
	}
}

func TestNewRunIDShapeAndUniqueness(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("two minted run IDs collided: %s", a)
	}
	for _, id := range []string{a, b} {
		if len(id) != 17 || id[0] != 'r' {
			t.Fatalf("run ID %q not in r<16 hex> form", id)
		}
	}
	// Nil-receiver safety, like every other Recorder method.
	var nilRec *Recorder
	nilRec.SetRunID("x")
	if nilRec.RunID() != "" {
		t.Fatal("nil recorder returned a run ID")
	}
}
