package faultsim

import (
	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/sim"
)

// DetectsFrom simulates seq on the good machine (starting from goodState)
// and on the f-faulty machine (starting from faultyState) and reports
// whether the fault is detected, along with the index of the first detecting
// vector. Either state may be nil for all-unknown. This is the single-fault
// oracle the test generator uses to confirm every candidate test before
// counting it.
func DetectsFrom(c *netlist.Circuit, f fault.Fault, goodState, faultyState logic.Vector, seq []logic.Vector) (bool, int) {
	good := sim.NewSerial(c)
	if goodState != nil {
		good.SetState(goodState)
	}
	bad := sim.NewSerial(c)
	bad.InjectFault(f)
	if faultyState != nil {
		bad.SetState(faultyState)
	}
	for i, in := range seq {
		g := good.Step(in)
		b := bad.Step(in)
		for o := range g {
			if g[o].IsKnown() && b[o].IsKnown() && g[o] != b[o] {
				return true, i
			}
		}
	}
	return false, -1
}

// Detects is DetectsFrom with both machines starting all-unknown.
func Detects(c *netlist.Circuit, f fault.Fault, seq []logic.Vector) (bool, int) {
	return DetectsFrom(c, f, nil, nil, seq)
}

// Observation is one failing measurement: test vector index and primary
// output index where the faulty machine's binary value contradicts the good
// machine's.
type Observation struct {
	Vector int
	PO     int
}

// Signatures fault-simulates the whole sequence for every fault (machines
// starting all-unknown) and returns each fault's complete failure signature
// — every failing (vector, PO) observation, not just the first. This is the
// raw material for dictionary-based fault diagnosis.
func Signatures(c *netlist.Circuit, faults []fault.Fault, seq []logic.Vector) [][]Observation {
	out := make([][]Observation, len(faults))
	good := sim.NewSerial(c)
	goodOut := make([]logic.Vector, len(seq))
	for i, in := range seq {
		goodOut[i] = good.Step(in)
	}
	for base := 0; base < len(faults); base += logic.Lanes {
		end := base + logic.Lanes
		if end > len(faults) {
			end = len(faults)
		}
		b := newBatch(c, faults[base:end])
		for vi, in := range seq {
			b.settle(in)
			for poi, po := range c.POs {
				g := goodOut[vi][poi]
				if !g.IsKnown() {
					continue
				}
				diff := logic.DiffMask(logic.WordAll(g), b.val[po])
				for diff != 0 {
					l := trailingBit(diff)
					diff &^= 1 << uint(l)
					if base+l < end {
						out[base+l] = append(out[base+l], Observation{Vector: vi, PO: poi})
					}
				}
			}
			b.clock()
		}
	}
	return out
}
