// Package faultsim implements a PROOFS-style bit-parallel sequential fault
// simulator: up to 64 faulty machines are simulated per pass, one per bit
// lane, against a serially simulated good machine. The simulator maintains
// per-fault flip-flop state across calls, so a growing test set can be graded
// incrementally exactly as the hybrid test generator builds it: every new
// test sequence is applied on top of the state left by the previous ones,
// detected faults are dropped, and incidental detections are credited.
//
// A fault is counted as detected when a primary output has a binary value in
// the good machine and the opposite binary value in the faulty machine
// (potential detections through unknowns are not counted, matching HITEC's
// conservative accounting).
package faultsim

import (
	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/sim"
)

// SiteWord is the fault-injection site consulted once per (batch, vector)
// evaluation. Arming it with runctl.ActCorrupt flips one lane of one packed
// primary-output word — the smallest possible silent miscompare in the
// bit-parallel engine — so the tests can prove the independent audit
// catches a corrupted detection instead of trusting it.
const SiteWord = "faultsim.word"

// Detection records one detected fault.
type Detection struct {
	Fault  fault.Fault
	Vector int // global index of the detecting vector (0-based)
}

// Simulator grades test sequences against a fault list.
type Simulator struct {
	c *netlist.Circuit

	good *sim.Serial // good-machine reference state

	remaining []fault.Fault
	fstate    [][]logic.V // per remaining fault: faulty flip-flop state

	detections []Detection
	potential  map[fault.Fault]bool // potentially detected (good known, faulty X)
	nVectors   int

	hooks *runctl.Hooks // fault-injection harness; nil when disarmed
	rec   *obs.Recorder // telemetry recorder; nil when disabled
}

// SetHooks installs the fault-injection harness consulted at SiteWord. A nil
// harness is inert.
func (s *Simulator) SetHooks(h *runctl.Hooks) { s.hooks = h }

// SetObs installs the telemetry recorder: every ApplySequence call becomes a
// "fault_sim" grading span with the vectors applied, the faults graded, and
// the newly detected count. A nil recorder is inert.
func (s *Simulator) SetObs(r *obs.Recorder) { s.rec = r }

// New returns a Simulator over the given fault list. All machines start in
// the all-unknown state (stuck flip-flop stems start at their stuck value).
func New(c *netlist.Circuit, faults []fault.Fault) *Simulator {
	return NewFromState(c, faults, nil)
}

// NewFromState is New with the good machine preset to the given flip-flop
// state (nil = all unknown). Faulty machines still start all-unknown — the
// convention the paper's fitness evaluation uses to avoid resimulating the
// full test set on every faulty circuit.
func NewFromState(c *netlist.Circuit, faults []fault.Fault, goodState logic.Vector) *Simulator {
	s := &Simulator{
		c:         c,
		good:      sim.NewSerial(c),
		remaining: append([]fault.Fault(nil), faults...),
		potential: make(map[fault.Fault]bool),
	}
	if goodState != nil {
		s.good.SetState(goodState)
	}
	s.fstate = make([][]logic.V, len(s.remaining))
	for i, f := range s.remaining {
		s.fstate[i] = initialFaultyState(c, f)
	}
	return s
}

// initialFaultyState is the all-unknown state with stuck flip-flops held.
func initialFaultyState(c *netlist.Circuit, f fault.Fault) []logic.V {
	st := make([]logic.V, len(c.DFFs))
	for i := range st {
		st[i] = logic.X
		if f.IsStem() && f.Node == c.DFFs[i] {
			st[i] = f.Stuck
		}
	}
	return st
}

// Remaining returns the undetected faults (caller must not modify).
func (s *Simulator) Remaining() []fault.Fault { return s.remaining }

// Detections returns all detections so far in detection order.
func (s *Simulator) Detections() []Detection { return s.detections }

// NumDetected returns the number of faults detected so far.
func (s *Simulator) NumDetected() int { return len(s.detections) }

// NumVectors returns the total number of vectors applied so far.
func (s *Simulator) NumVectors() int { return s.nVectors }

// PotentiallyDetected returns the still-undetected faults that at some point
// produced an unknown faulty value against a known good value at a primary
// output — HITEC's "potential detections", which a tester observing the real
// (binary) machine might or might not catch. They are never counted in
// NumDetected.
func (s *Simulator) PotentiallyDetected() []fault.Fault {
	var out []fault.Fault
	for _, f := range s.remaining {
		if s.potential[f] {
			out = append(out, f)
		}
	}
	return out
}

// GoodState returns the good machine's current flip-flop state.
func (s *Simulator) GoodState() logic.Vector { return s.good.State() }

// ApplySequence applies the vectors to the good machine and to every
// remaining faulty machine, drops faults detected along the way, and returns
// the newly detected faults.
func (s *Simulator) ApplySequence(seq []logic.Vector) []fault.Fault {
	if len(seq) == 0 {
		return nil
	}
	sp := s.rec.StartSpan("fault_sim", "", 0)
	graded := len(s.remaining)
	// Record good PO values and next-states once.
	goodOut := make([]logic.Vector, len(seq))
	for i, in := range seq {
		goodOut[i] = s.good.Step(in)
	}

	detected := make([]bool, len(s.remaining))
	var newly []fault.Fault
	for base := 0; base < len(s.remaining); base += logic.Lanes {
		end := base + logic.Lanes
		if end > len(s.remaining) {
			end = len(s.remaining)
		}
		s.runBatch(base, end, seq, goodOut, detected, &newly)
	}
	s.nVectors += len(seq)

	// Compact the remaining fault list.
	var keepF []fault.Fault
	var keepS [][]logic.V
	for i := range s.remaining {
		if !detected[i] {
			keepF = append(keepF, s.remaining[i])
			keepS = append(keepS, s.fstate[i])
		}
	}
	s.remaining = keepF
	s.fstate = keepS
	sp.End("graded", obs.Attrs{
		"vectors": float64(len(seq)),
		"faults":  float64(graded),
		"newly":   float64(len(newly)),
	})
	return newly
}

// runBatch simulates faults [base, end) over the sequence.
func (s *Simulator) runBatch(base, end int, seq []logic.Vector, goodOut []logic.Vector, detected []bool, newly *[]fault.Fault) {
	n := end - base
	b := newBatch(s.c, s.remaining[base:end])

	// Load the per-fault faulty states into the lanes.
	ffWords := make([]logic.Word, len(s.c.DFFs))
	for ffi := range s.c.DFFs {
		w := logic.WordAllX
		for l := 0; l < n; l++ {
			w = w.WithLane(l, s.fstate[base+l][ffi])
		}
		ffWords[ffi] = w
	}
	b.setFFs(ffWords)

	done := uint64(0) // lanes already detected
	for vi, in := range seq {
		b.settle(in)
		if s.hooks.Enter(SiteWord) == runctl.ActCorrupt {
			corruptWord(s.c, b, n, goodOut[vi], done)
		}
		for poi, po := range s.c.POs {
			g := goodOut[vi][poi]
			if !g.IsKnown() {
				continue
			}
			goodW := logic.WordAll(g)
			diff := logic.DiffMask(goodW, b.val[po]) &^ done
			for diff != 0 {
				l := trailingBit(diff)
				diff &^= 1 << uint(l)
				done |= 1 << uint(l)
				detected[base+l] = true
				*newly = append(*newly, s.remaining[base+l])
				s.detections = append(s.detections, Detection{
					Fault:  s.remaining[base+l],
					Vector: s.nVectors + vi,
				})
			}
			// Potential detections: faulty value unknown where the good
			// machine drives a binary value.
			pot := ^b.val[po].Defined() &^ done
			for pot != 0 {
				l := trailingBit(pot)
				pot &^= 1 << uint(l)
				if l < end-base {
					s.potential[s.remaining[base+l]] = true
				}
			}
		}
		b.clock()
	}
	// Save the faulty states back.
	for ffi, ff := range s.c.DFFs {
		w := b.val[ff]
		for l := 0; l < n; l++ {
			s.fstate[base+l][ffi] = w.Get(l)
		}
	}
}

// corruptWord simulates the smallest silent packed-evaluation bug: it finds
// the first primary output whose good value is binary and the first live
// lane (< n, not yet detected) that currently agrees with it, and flips that
// lane to the complement. The fault in that lane is then spuriously
// "detected" by the comparison loop that follows — exactly the class of
// miscompare the independent audit exists to catch.
func corruptWord(c *netlist.Circuit, b *batch, n int, good logic.Vector, done uint64) {
	for poi, po := range c.POs {
		g := good[poi]
		if !g.IsKnown() {
			continue
		}
		w := b.val[po]
		for l := 0; l < n; l++ {
			if done&(1<<uint(l)) != 0 {
				continue
			}
			if w.Get(l) == g {
				b.val[po] = w.WithLane(l, g.Not())
				return
			}
		}
	}
}

func trailingBit(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}
