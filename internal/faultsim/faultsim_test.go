package faultsim

import (
	"math/rand"
	"testing"

	"gahitec/internal/bench"
	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/runctl"
	"gahitec/internal/sim"
	"gahitec/internal/testgen"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func mustParse(t *testing.T, src, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Oracle: detection decided by two independent serial simulations of the
// full vector history.
func oracleDetect(c *netlist.Circuit, f fault.Fault, history []logic.Vector) (bool, int) {
	good := sim.NewSerial(c)
	bad := sim.NewSerial(c)
	bad.InjectFault(f)
	for i, in := range history {
		g := good.Step(in)
		b := bad.Step(in)
		for o := range g {
			if g[o].IsKnown() && b[o].IsKnown() && g[o] != b[o] {
				return true, i
			}
		}
	}
	return false, -1
}

// The parallel fault simulator must agree exactly with the serial oracle,
// fault by fault, including across incremental ApplySequence calls.
func TestParallelMatchesSerialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		c := testgen.RandomCircuit(r, "rc", 2+r.Intn(4), 1+r.Intn(5), 8+r.Intn(40))
		faults := fault.All(c)
		fs := New(c, faults)
		var history []logic.Vector
		detectedAt := make(map[fault.Fault]int)
		for chunk := 0; chunk < 3; chunk++ {
			seq := testgen.RandomSequence(r, 4+r.Intn(5), len(c.PIs), 0.1)
			history = append(history, seq...)
			for _, f := range fs.ApplySequence(seq) {
				detectedAt[f] = 1 // recorded below from Detections
			}
		}
		for _, d := range fs.Detections() {
			ok, vi := oracleDetect(c, d.Fault, history)
			if !ok {
				t.Fatalf("trial %d: %s reported detected but oracle says no", trial, d.Fault.String(c))
			}
			if vi != d.Vector {
				t.Fatalf("trial %d: %s detected at vector %d, oracle says %d",
					trial, d.Fault.String(c), d.Vector, vi)
			}
		}
		for _, f := range fs.Remaining() {
			if ok, _ := oracleDetect(c, f, history); ok {
				t.Fatalf("trial %d: %s missed (oracle detects it)", trial, f.String(c))
			}
		}
	}
}

func TestFaultDropping(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	fs := New(c, faults)
	r := rand.New(rand.NewSource(1))
	seq := testgen.RandomSequence(r, 50, len(c.PIs), 0)
	newly := fs.ApplySequence(seq)
	if len(newly) == 0 {
		t.Fatal("random 50-vector sequence detected nothing on s27")
	}
	if len(fs.Remaining())+fs.NumDetected() != len(faults) {
		t.Fatalf("accounting broken: %d remaining + %d detected != %d",
			len(fs.Remaining()), fs.NumDetected(), len(faults))
	}
	// A second application of the same sequence must not re-detect.
	before := fs.NumDetected()
	fs.ApplySequence(seq)
	after := fs.NumDetected()
	if after < before {
		t.Fatal("detection count decreased")
	}
	if fs.NumVectors() != 100 {
		t.Fatalf("NumVectors = %d", fs.NumVectors())
	}
}

// Random vectors detect a solid fraction of s27's faults. Full coverage is
// NOT expected under three-valued unknown-start semantics: once G7 latches
// to 1 (G12=NOR(G1,G7), G13=NAND(G2,G12), G7=DFF(G13)), the state G12=1 is
// unreachable, and reaching it from the initial all-X state would require
// resolving G7=0 from X, which three-valued simulation soundly refuses.
func TestS27RandomCoverage(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	fs := New(c, faults)
	r := rand.New(rand.NewSource(2))
	fs.ApplySequence(testgen.RandomSequence(r, 500, len(c.PIs), 0))
	cov := float64(fs.NumDetected()) / float64(len(faults))
	if cov < 0.3 {
		t.Errorf("random coverage on s27 only %.0f%% (%d/%d)", cov*100, fs.NumDetected(), len(faults))
	}
}

func TestDetectsFromStates(t *testing.T) {
	c := mustParse(t, s27, "s27")
	g17, _ := c.Lookup("G17")
	f := fault.Fault{Node: g17, Pin: fault.StemPin, Stuck: logic.Zero}
	// G17 s-a-0 is detected by any vector making G17=1 in the good machine:
	// G17 = NOT(G11), G11 = NOR(G5, G9); with state 000 and input 0000,
	// the hand simulation in the sim tests showed G17 = 1.
	st, _ := logic.ParseVector("000")
	in, _ := logic.ParseVector("0000")
	ok, vi := DetectsFrom(c, f, st, st, []logic.Vector{in})
	if !ok || vi != 0 {
		t.Fatalf("DetectsFrom = %v, %d", ok, vi)
	}
	// From an all-unknown state the same single vector cannot establish a
	// known good output... unless the logic forces it; verify consistency
	// with the serial oracle instead of asserting a specific value.
	ok2, _ := Detects(c, f, []logic.Vector{in})
	okO, _ := oracleDetect(c, f, []logic.Vector{in})
	if ok2 != okO {
		t.Fatalf("Detects=%v oracle=%v", ok2, okO)
	}
}

// Batch boundaries: more than 64 faults must split into multiple batches and
// still agree with the oracle.
func TestMultipleBatches(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := testgen.RandomCircuit(r, "big", 6, 6, 120)
	faults := fault.All(c)
	if len(faults) <= 2*logic.Lanes {
		t.Skipf("want >128 faults, got %d", len(faults))
	}
	fs := New(c, faults)
	seq := testgen.RandomSequence(r, 6, len(c.PIs), 0)
	fs.ApplySequence(seq)
	for _, d := range fs.Detections() {
		if ok, _ := oracleDetect(c, d.Fault, seq); !ok {
			t.Fatalf("false detection %s", d.Fault.String(c))
		}
	}
	for _, f := range fs.Remaining() {
		if ok, _ := oracleDetect(c, f, seq); ok {
			t.Fatalf("missed detection %s", f.String(c))
		}
	}
}

func TestEmptySequenceNoop(t *testing.T) {
	c := mustParse(t, s27, "s27")
	fs := New(c, fault.Collapse(c))
	if got := fs.ApplySequence(nil); got != nil {
		t.Fatal("empty sequence detected faults")
	}
	if fs.NumVectors() != 0 {
		t.Fatal("vector count changed")
	}
}

// The good machine state advances exactly like a plain serial simulation.
func TestGoodStateTracksSerial(t *testing.T) {
	c := mustParse(t, s27, "s27")
	fs := New(c, fault.Collapse(c))
	ref := sim.NewSerial(c)
	r := rand.New(rand.NewSource(8))
	seq := testgen.RandomSequence(r, 20, len(c.PIs), 0)
	fs.ApplySequence(seq)
	for _, in := range seq {
		ref.Step(in)
	}
	if fs.GoodState().String() != ref.State().String() {
		t.Fatalf("good state %s != serial %s", fs.GoodState(), ref.State())
	}
}

// An armed ActCorrupt rule flips exactly one live lane of one packed PO
// word, fabricating exactly one detection that the serial oracle refutes at
// the claimed vector.
func TestCorruptionHookFabricatesOneDetection(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	rng := rand.New(rand.NewSource(5))
	var seq []logic.Vector
	for i := 0; i < 6; i++ {
		v := make(logic.Vector, len(c.PIs))
		for j := range v {
			v[j] = logic.FromBit(rng.Uint64())
		}
		seq = append(seq, v)
	}

	clean := New(c, faults)
	clean.ApplySequence(seq)

	dirty := New(c, faults)
	h := runctl.NewHooks()
	h.Arm(SiteWord, 2, runctl.ActCorrupt) // vector 1: first vector with a binary good PO
	dirty.SetHooks(h)
	dirty.ApplySequence(seq)

	// Every clean claim must match the serial oracle exactly; the corrupted
	// run must carry at least one claim the oracle refutes (wrong vector or
	// no detection at all) — the miscompare the audit subsystem exists for.
	refuted := func(s *Simulator) []Detection {
		var out []Detection
		for _, d := range s.Detections() {
			if det, at := oracleDetect(c, d.Fault, seq); !det || at != d.Vector {
				out = append(out, d)
			}
		}
		return out
	}
	if bad := refuted(clean); len(bad) != 0 {
		t.Fatalf("clean run already disagrees with the oracle: %v", bad)
	}
	bad := refuted(dirty)
	if len(bad) != 1 {
		t.Fatalf("corrupted run has %d refutable claims, want exactly 1: %v", len(bad), bad)
	}
}
