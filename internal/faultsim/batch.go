package faultsim

import (
	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

// batch is a 64-lane faulty-machine simulator where every lane carries a
// *different* fault. Fault injection is mask-based: for each node, the lanes
// whose fault sticks that node's stem are precomputed, and likewise per gate
// input pin for branch faults. Evaluation is event-driven over the levelized
// netlist (the PROOFS scheduling discipline): only gates whose fanin words
// changed are re-evaluated, which matters because consecutive vectors leave
// most of the circuit untouched.
type batch struct {
	c   *netlist.Circuit
	val []logic.Word

	// stem0/stem1: per node, lanes whose fault forces the stem to 0/1.
	stem0, stem1 []uint64
	// pin masks, keyed by (node, pin): lanes forcing that pin.
	pin map[pinKey]maskPair

	buckets   [][]netlist.ID
	scheduled []bool
	maxLevel  int

	nextQ []logic.Word
}

type pinKey struct {
	node netlist.ID
	pin  int
}

type maskPair struct {
	m0, m1 uint64
}

func newBatch(c *netlist.Circuit, faults []fault.Fault) *batch {
	maxLevel := 0
	for _, l := range c.Level {
		if int(l) > maxLevel {
			maxLevel = int(l)
		}
	}
	b := &batch{
		c:         c,
		val:       make([]logic.Word, len(c.Nodes)),
		stem0:     make([]uint64, len(c.Nodes)),
		stem1:     make([]uint64, len(c.Nodes)),
		pin:       make(map[pinKey]maskPair),
		buckets:   make([][]netlist.ID, maxLevel+1),
		scheduled: make([]bool, len(c.Nodes)),
		maxLevel:  maxLevel,
		nextQ:     make([]logic.Word, len(c.DFFs)),
	}
	for l, f := range faults {
		bit := uint64(1) << uint(l)
		if f.IsStem() {
			if f.Stuck == logic.Zero {
				b.stem0[f.Node] |= bit
			} else {
				b.stem1[f.Node] |= bit
			}
		} else {
			k := pinKey{f.Node, f.Pin}
			mp := b.pin[k]
			if f.Stuck == logic.Zero {
				mp.m0 |= bit
			} else {
				mp.m1 |= bit
			}
			b.pin[k] = mp
		}
	}
	// Initialize: everything unknown, constants and stuck stems forced, and
	// every gate scheduled for the first settle.
	for i := range b.val {
		w := logic.WordAllX
		switch c.Nodes[i].Kind {
		case netlist.KConst0:
			w = logic.WordAll(logic.Zero)
		case netlist.KConst1:
			w = logic.WordAll(logic.One)
		}
		b.val[i] = b.stemFixed(netlist.ID(i), w)
	}
	for _, id := range c.Order {
		b.schedule(id)
	}
	return b
}

func (b *batch) schedule(id netlist.ID) {
	if b.scheduled[id] {
		return
	}
	b.scheduled[id] = true
	lvl := b.c.Level[id]
	b.buckets[lvl] = append(b.buckets[lvl], id)
}

// setNode writes a value and schedules gate readers if it changed.
func (b *batch) setNode(id netlist.ID, w logic.Word) {
	if b.val[id] == w {
		return
	}
	b.val[id] = w
	for _, fo := range b.c.Fanouts[id] {
		if b.c.Nodes[fo].Kind.IsGate() {
			b.schedule(fo)
		}
	}
}

// stemFixed forces the lanes whose fault sticks node id.
func (b *batch) stemFixed(id netlist.ID, w logic.Word) logic.Word {
	if m := b.stem0[id]; m != 0 {
		w = logic.SpreadV(w, m, logic.Zero)
	}
	if m := b.stem1[id]; m != 0 {
		w = logic.SpreadV(w, m, logic.One)
	}
	return w
}

// faninWord reads the word seen by pin p of node g, honouring branch faults.
func (b *batch) faninWord(g netlist.ID, p int) logic.Word {
	w := b.val[b.c.Nodes[g].Fanin[p]]
	if len(b.pin) != 0 {
		if mp, ok := b.pin[pinKey{g, p}]; ok {
			if mp.m0 != 0 {
				w = logic.SpreadV(w, mp.m0, logic.Zero)
			}
			if mp.m1 != 0 {
				w = logic.SpreadV(w, mp.m1, logic.One)
			}
		}
	}
	return w
}

// setFFs loads the per-lane flip-flop states.
func (b *batch) setFFs(ws []logic.Word) {
	for i, ff := range b.c.DFFs {
		b.setNode(ff, b.stemFixed(ff, ws[i]))
	}
}

// settle applies a (broadcast) input vector and propagates events in level
// order.
func (b *batch) settle(in logic.Vector) {
	for i, pi := range b.c.PIs {
		v := logic.X
		if i < len(in) {
			v = in[i]
		}
		b.setNode(pi, b.stemFixed(pi, logic.WordAll(v)))
	}
	for lvl := 0; lvl <= b.maxLevel; lvl++ {
		bucket := b.buckets[lvl]
		for k := 0; k < len(bucket); k++ {
			id := bucket[k]
			b.scheduled[id] = false
			n := &b.c.Nodes[id]
			var w logic.Word
			switch n.Kind {
			case netlist.KBuf:
				w = b.faninWord(id, 0)
			case netlist.KNot:
				w = logic.NotW(b.faninWord(id, 0))
			case netlist.KAnd, netlist.KNand:
				w = logic.WordAll(logic.One)
				for p := range n.Fanin {
					w = logic.AndW(w, b.faninWord(id, p))
				}
				if n.Kind == netlist.KNand {
					w = logic.NotW(w)
				}
			case netlist.KOr, netlist.KNor:
				w = logic.WordAll(logic.Zero)
				for p := range n.Fanin {
					w = logic.OrW(w, b.faninWord(id, p))
				}
				if n.Kind == netlist.KNor {
					w = logic.NotW(w)
				}
			case netlist.KXor, netlist.KXnor:
				w = b.faninWord(id, 0)
				for p := 1; p < len(n.Fanin); p++ {
					w = logic.XorW(w, b.faninWord(id, p))
				}
				if n.Kind == netlist.KXnor {
					w = logic.NotW(w)
				}
			default:
				w = logic.WordAllX
			}
			b.setNode(id, b.stemFixed(id, w))
		}
		b.buckets[lvl] = bucket[:0]
	}
}

// clock latches D into Q for every flip-flop.
func (b *batch) clock() {
	for i, ff := range b.c.DFFs {
		b.nextQ[i] = b.faninWord(ff, 0)
	}
	for i, ff := range b.c.DFFs {
		b.setNode(ff, b.stemFixed(ff, b.nextQ[i]))
	}
}
