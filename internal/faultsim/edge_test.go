package faultsim

import (
	"testing"

	"gahitec/internal/fault"
	"gahitec/internal/logic"
)

// Detection index must be the first vector exposing the fault, globally
// counted across ApplySequence calls.
func TestDetectionIndexGlobal(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(a)
z = BUF(q)
`
	c := mustParse(t, src, "d1")
	q, _ := c.Lookup("q")
	f := fault.Fault{Node: q, Pin: fault.StemPin, Stuck: logic.Zero}
	fs := New(c, []fault.Fault{f})
	zero := logic.Vector{logic.Zero}
	one := logic.Vector{logic.One}
	// Sequence 1: drive 0 twice (no difference: faulty q=0, good q=0).
	fs.ApplySequence([]logic.Vector{zero, zero})
	if fs.NumDetected() != 0 {
		t.Fatal("detected without sensitization")
	}
	// Sequence 2: drive 1; the good machine latches 1 at the end of the
	// first vector, so the second vector observes good z=1 vs faulty z=0.
	fs.ApplySequence([]logic.Vector{one, one})
	if fs.NumDetected() != 1 {
		t.Fatal("not detected")
	}
	if got := fs.Detections()[0].Vector; got != 3 {
		t.Fatalf("detection at global vector %d, want 3", got)
	}
}

// A stuck flip-flop is detectable immediately if the PO reads it and the
// good machine's value differs.
func TestStuckFFImmediateDetection(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(a)
z = BUF(q)
`
	c := mustParse(t, src, "d2")
	q, _ := c.Lookup("q")
	f := fault.Fault{Node: q, Pin: fault.StemPin, Stuck: logic.One}
	fs := New(c, []fault.Fault{f})
	one := logic.Vector{logic.One}
	zero := logic.Vector{logic.Zero}
	// Latch 0 into good q, then observe.
	fs.ApplySequence([]logic.Vector{zero, one})
	// At vector 2 (index 1), good z = 0 (latched), faulty z = 1 (stuck).
	if fs.NumDetected() != 1 {
		t.Fatalf("stuck-FF not detected: %d", fs.NumDetected())
	}
}

// X outputs never count as detections even when the faulty value is known.
func TestNoDetectionThroughX(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(q2)
q2 = DFF(q)
z = XOR(q, a)
`
	c := mustParse(t, src, "d3")
	q, _ := c.Lookup("q")
	f := fault.Fault{Node: q, Pin: fault.StemPin, Stuck: logic.One}
	fs := New(c, []fault.Fault{f})
	// Good q is never initializable (feedback pair with no input), so good
	// z stays X: no detection, ever.
	seq := make([]logic.Vector, 20)
	for i := range seq {
		seq[i] = logic.Vector{logic.FromBit(uint64(i))}
	}
	fs.ApplySequence(seq)
	if fs.NumDetected() != 0 {
		t.Fatal("detected through an unknown good value")
	}
}

// Pin fault on a PO gate input is detected like any other.
func TestPOPinFault(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(w)
y = AND(a, b)
w = OR(a, b)
`
	c := mustParse(t, src, "d4")
	y, _ := c.Lookup("y")
	f := fault.Fault{Node: y, Pin: 1, Stuck: logic.One} // b-pin of the AND
	fs := New(c, []fault.Fault{f})
	in, _ := logic.ParseVector("10")
	fs.ApplySequence([]logic.Vector{in})
	if fs.NumDetected() != 1 {
		t.Fatalf("pin fault not detected (good y=0, faulty y=1)")
	}
}

// Potential detections: a fault that drives a PO to X against a known good
// value is reported as potentially detected, not detected.
func TestPotentialDetection(t *testing.T) {
	// The faulty machine's q stays X (it can only latch the unknowable
	// feedback value) while the good machine sees a through the mux.
	src := `
INPUT(a)
INPUT(s)
OUTPUT(z)
q = DFF(z)
ns = NOT(s)
t1 = AND(s, a)
t2 = AND(ns, q)
z = OR(t1, t2)
`
	c := mustParse(t, src, "pd")
	// Fault: s stuck at 0 makes z = q = X forever in the faulty machine.
	sID, _ := c.Lookup("s")
	f := fault.Fault{Node: sID, Pin: fault.StemPin, Stuck: logic.Zero}
	fs := New(c, []fault.Fault{f})
	one := logic.Vector{logic.One, logic.One}
	fs.ApplySequence([]logic.Vector{one, one})
	if fs.NumDetected() != 0 {
		t.Fatal("X-output fault counted as detected")
	}
	if len(fs.PotentiallyDetected()) != 1 {
		t.Fatalf("potential detections = %d, want 1", len(fs.PotentiallyDetected()))
	}
}

// Batches keep per-fault state independent: two faults whose detection
// requires opposite state trajectories both get detected.
func TestIndependentFaultyStates(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(a)
z = BUF(q)
`
	c := mustParse(t, src, "d5")
	q, _ := c.Lookup("q")
	f0 := fault.Fault{Node: q, Pin: fault.StemPin, Stuck: logic.Zero}
	f1 := fault.Fault{Node: q, Pin: fault.StemPin, Stuck: logic.One}
	fs := New(c, []fault.Fault{f0, f1})
	one := logic.Vector{logic.One}
	zero := logic.Vector{logic.Zero}
	fs.ApplySequence([]logic.Vector{one, one, zero, zero})
	if fs.NumDetected() != 2 {
		t.Fatalf("detected %d of 2 complementary stuck-FF faults", fs.NumDetected())
	}
}
