package audit

import (
	"context"
	"strings"
	"testing"

	"gahitec/internal/bench"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

// A small sequential circuit: q latches (a OR q), z observes (b AND q).
const latchSrc = `
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(d)
d = OR(a, q)
z = AND(b, q)
`

func latchCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(latchSrc, "latch")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func vec(t *testing.T, s string) logic.Vector {
	t.Helper()
	v, err := logic.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// grade runs the bit-parallel simulator over the test set and returns its
// claims plus the still-undetected faults.
func grade(t *testing.T, c *netlist.Circuit, testSet [][]logic.Vector) ([]Claim, []fault.Fault) {
	t.Helper()
	fs := faultsim.New(c, fault.Collapse(c))
	for _, seq := range testSet {
		fs.ApplySequence(seq)
	}
	var claims []Claim
	for _, d := range fs.Detections() {
		claims = append(claims, Claim{Fault: d.Fault, Vector: d.Vector})
	}
	return claims, fs.Remaining()
}

func testSet(t *testing.T) [][]logic.Vector {
	return [][]logic.Vector{
		{vec(t, "11"), vec(t, "11"), vec(t, "01")},
		{vec(t, "00"), vec(t, "01")},
	}
}

// Every genuine bit-parallel detection must reproduce on the serial
// reference at exactly the claimed vector.
func TestAuditConfirmsGenuineDetections(t *testing.T) {
	c := latchCircuit(t)
	set := testSet(t)
	claims, _ := grade(t, c, set)
	if len(claims) == 0 {
		t.Fatal("test set detected nothing; test is vacuous")
	}

	rep, err := Verify(context.Background(), c, set, claims)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("genuine detections did not audit clean: %+v", rep)
	}
	if rep.Confirmed != len(claims) || rep.Claims != len(claims) {
		t.Fatalf("confirmed %d of %d claims", rep.Confirmed, len(claims))
	}
	if rep.VerifiedDetections() != len(claims) {
		t.Fatalf("VerifiedDetections = %d, want %d", rep.VerifiedDetections(), len(claims))
	}
	if rep.Vectors != 5 {
		t.Fatalf("replayed %d vectors, want 5", rep.Vectors)
	}
}

// A fabricated claim — a fault the reference simulator never sees detected —
// is demoted to unverified, and only that claim.
func TestAuditDemotesFabricatedClaim(t *testing.T) {
	c := latchCircuit(t)
	set := testSet(t)
	claims, remaining := grade(t, c, set)
	if len(remaining) == 0 {
		t.Fatal("no undetected fault available to fabricate a claim for")
	}
	bogus := remaining[0]
	claims = append(claims, Claim{Fault: bogus, Vector: 0})

	rep, err := Verify(context.Background(), c, set, claims)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unverified != 1 {
		t.Fatalf("unverified = %d, want exactly 1", rep.Unverified)
	}
	demoted := rep.Demoted()
	if len(demoted) != 1 || demoted[0] != bogus {
		t.Fatalf("demoted %v, want [%s]", demoted, bogus.String(c))
	}
	rec := rep.Records[len(rep.Records)-1]
	if rec.Verdict != Unverified || rec.Serial != -1 {
		t.Fatalf("bogus claim record: %+v", rec)
	}
	if len(rec.Expected) != len(c.POs) || len(rec.Observed) != len(c.POs) {
		t.Fatalf("record missing PO evidence: %+v", rec)
	}
	if rep.Clean() {
		t.Fatal("report with a demotion claims to be clean")
	}
	if !strings.Contains(rec.String(c), "never detects") {
		t.Fatalf("unhelpful record rendering: %s", rec.String(c))
	}
}

// A claim whose vector index disagrees with the reference's detection is a
// miscompare even though the detection itself is real.
func TestAuditFlagsShiftedClaim(t *testing.T) {
	c := latchCircuit(t)
	set := testSet(t)
	claims, _ := grade(t, c, set)
	if len(claims) == 0 {
		t.Fatal("no claims")
	}
	claims[0].Vector++

	rep, err := Verify(context.Background(), c, set, claims)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConfirmedOther != 1 {
		t.Fatalf("confirmed-other = %d, want 1: %+v", rep.ConfirmedOther, rep.Records[0])
	}
	if rep.Clean() {
		t.Fatal("index disagreement not treated as a miscompare")
	}
	// The detection is still real: it counts toward audited coverage.
	if rep.VerifiedDetections() != len(claims) {
		t.Fatalf("VerifiedDetections = %d, want %d", rep.VerifiedDetections(), len(claims))
	}
}

// An out-of-range claimed vector is demoted, not a crash.
func TestAuditOutOfRangeClaim(t *testing.T) {
	c := latchCircuit(t)
	set := testSet(t)
	_, remaining := grade(t, c, set)
	claims := []Claim{{Fault: remaining[0], Vector: 999}}
	rep, err := Verify(context.Background(), c, set, claims)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unverified != 1 {
		t.Fatalf("out-of-range claim not demoted: %+v", rep.Records)
	}
}

func TestAuditHonorsCancellation(t *testing.T) {
	c := latchCircuit(t)
	set := testSet(t)
	claims, _ := grade(t, c, set)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Verify(ctx, c, set, claims); err == nil {
		t.Fatal("cancelled audit returned no error")
	}
}
