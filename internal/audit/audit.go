// Package audit independently verifies a generated test set: every fault the
// bit-parallel PROOFS-style fault simulator claims to detect is replayed
// against the serial reference simulator (sim.Serial), one fault at a time,
// and the detection must reproduce — same fault, same test set, no shared
// code with the packed 3-valued engine beyond the netlist itself.
//
// The trust model is "tests as proofs": the coverage number a run reports is
// only as good as the simulator that produced it, and a silent miscompare in
// packed evaluation inflates coverage with no way to notice. The audit turns
// each detection claim into a checkable statement — "vector v drives a
// binary value at some primary output that the faulty machine contradicts" —
// and demotes claims the reference simulator cannot reproduce to unverified
// instead of trusting them.
//
// The replay contract matches the incremental grading discipline of
// faultsim.Simulator: the good machine and every faulty machine start from
// power-on (all flip-flops unknown, stuck stems held at their stuck value)
// and step through the concatenation of all test sequences without any reset
// in between.
package audit

import (
	"context"
	"fmt"

	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/sim"
)

// Claim is one detection asserted by the bit-parallel fault simulator: the
// fault and the global index (across the concatenated test set) of the
// vector it was first detected at.
type Claim struct {
	Fault  fault.Fault
	Vector int
}

// Verdict is the outcome of auditing one claim.
type Verdict uint8

const (
	// Unverified: the serial reference never detects the fault anywhere in
	// the test set. The claim is demoted — the fault must not be counted as
	// covered.
	Unverified Verdict = iota
	// Confirmed: the serial reference detects the fault at exactly the
	// claimed vector.
	Confirmed
	// ConfirmedOther: the serial reference detects the fault, but at a
	// different vector than claimed. The detection is real, but the two
	// engines disagree — still a miscompare for strict accounting.
	ConfirmedOther
)

func (v Verdict) String() string {
	switch v {
	case Confirmed:
		return "confirmed"
	case ConfirmedOther:
		return "confirmed-other-vector"
	default:
		return "unverified"
	}
}

// Record is the structured audit result for one claim: the fault, where the
// detection was claimed versus where (if anywhere) the reference simulator
// observed it, and the primary-output values at the decisive vector — the
// reference's detecting vector when one exists, else the claimed vector, so
// an unverified record shows exactly the non-miscompare that voids the
// claim.
type Record struct {
	Fault   fault.Fault
	Claimed int // claimed detecting vector (global index)
	Serial  int // reference detecting vector, -1 if never detected

	// Expected is the good machine's PO vector at the decisive vector;
	// Observed is the faulty machine's.
	Expected logic.Vector
	Observed logic.Vector

	Verdict Verdict
}

// String renders the record for reports and error messages.
func (r Record) String(c *netlist.Circuit) string {
	switch r.Verdict {
	case Confirmed:
		return fmt.Sprintf("%s: confirmed at vector %d", r.Fault.String(c), r.Claimed)
	case ConfirmedOther:
		return fmt.Sprintf("%s: claimed at vector %d, reference detects at %d",
			r.Fault.String(c), r.Claimed, r.Serial)
	default:
		return fmt.Sprintf("%s: claimed at vector %d, reference never detects (PO good=%s faulty=%s)",
			r.Fault.String(c), r.Claimed, r.Expected, r.Observed)
	}
}

// Report is the outcome of auditing a whole test set.
type Report struct {
	Vectors int // vectors replayed (concatenated test set length)
	Claims  int // claims audited

	Confirmed      int
	ConfirmedOther int
	Unverified     int

	// Records holds one entry per claim, in claim order.
	Records []Record
}

// Clean reports whether every claim was confirmed at its claimed vector —
// the strict-mode criterion.
func (r *Report) Clean() bool { return r.ConfirmedOther == 0 && r.Unverified == 0 }

// Demoted returns the faults whose claims could not be verified at all.
func (r *Report) Demoted() []fault.Fault {
	var out []fault.Fault
	for _, rec := range r.Records {
		if rec.Verdict == Unverified {
			out = append(out, rec.Fault)
		}
	}
	return out
}

// VerifiedDetections returns the number of claims whose detection the
// reference simulator reproduced (at the claimed vector or elsewhere) — the
// audited coverage numerator.
func (r *Report) VerifiedDetections() int { return r.Confirmed + r.ConfirmedOther }

// Verify audits every claim against the serial reference simulator. The good
// machine is replayed once over the concatenated test set; then each claimed
// fault is injected into a fresh serial machine and replayed from power-on,
// exactly mirroring the bit-parallel simulator's incremental grading (no
// reset between sequences, faulty flip-flop stems held from power-on).
//
// ctx bounds the replay: cancellation between faults returns the error with
// a nil report. A claim whose vector index is out of range is recorded as
// Unverified with Serial -1 rather than rejected, so a corrupted detection
// log is surfaced through the same demotion path as a miscompare.
func Verify(ctx context.Context, c *netlist.Circuit, testSet [][]logic.Vector, claims []Claim) (*Report, error) {
	return VerifyObs(ctx, c, testSet, claims, nil)
}

// VerifyObs is Verify with run telemetry: the whole replay is one "audit"
// span (outcome "clean" or "dirty"), every miscompare emits a point event,
// and the per-verdict counters reconcile with the report. A nil recorder
// makes it identical to Verify.
func VerifyObs(ctx context.Context, c *netlist.Circuit, testSet [][]logic.Vector, claims []Claim, rec *obs.Recorder) (*Report, error) {
	var seq []logic.Vector
	for _, s := range testSet {
		seq = append(seq, s...)
	}

	sp := rec.StartSpan("audit", "", 0)

	// One good-machine replay serves every claim.
	good := sim.NewSerial(c)
	goodOut := make([]logic.Vector, len(seq))
	for i, in := range seq {
		goodOut[i] = good.Step(in)
	}

	rep := &Report{Vectors: len(seq), Claims: len(claims)}
	for _, cl := range claims {
		if err := ctx.Err(); err != nil {
			sp.End("cancelled", nil)
			return nil, err
		}
		r := auditClaim(c, cl, seq, goodOut)
		switch r.Verdict {
		case Confirmed:
			rep.Confirmed++
		case ConfirmedOther:
			rep.ConfirmedOther++
		default:
			rep.Unverified++
		}
		rec.Counter("audit."+r.Verdict.String(), 1)
		if r.Verdict != Confirmed {
			rec.Point("audit", "miscompare", r.Fault.String(c), 0, obs.Attrs{
				"claimed_vector": float64(r.Claimed),
				"serial_vector":  float64(r.Serial),
			})
		}
		rep.Records = append(rep.Records, r)
	}
	outcome := "clean"
	if !rep.Clean() {
		outcome = "dirty"
	}
	sp.End(outcome, obs.Attrs{
		"claims":          float64(rep.Claims),
		"vectors":         float64(rep.Vectors),
		"confirmed":       float64(rep.Confirmed),
		"confirmed_other": float64(rep.ConfirmedOther),
		"demoted":         float64(rep.Unverified),
	})
	return rep, nil
}

// auditClaim replays one faulty machine over the whole test set and compares
// against the recorded good-machine outputs.
func auditClaim(c *netlist.Circuit, cl Claim, seq []logic.Vector, goodOut []logic.Vector) Record {
	rec := Record{Fault: cl.Fault, Claimed: cl.Vector, Serial: -1}

	bad := sim.NewSerial(c)
	bad.InjectFault(cl.Fault)
	for i, in := range seq {
		out := bad.Step(in)
		if miscompares(goodOut[i], out) {
			rec.Serial = i
			rec.Expected = goodOut[i].Clone()
			rec.Observed = out
			break
		}
	}

	switch {
	case rec.Serial == cl.Vector:
		rec.Verdict = Confirmed
	case rec.Serial >= 0:
		rec.Verdict = ConfirmedOther
	default:
		rec.Verdict = Unverified
		// Show the PO values at the claimed vector: the evidence that no
		// miscompare happens where one was claimed. Replaying up to the
		// claimed vector again is cheap relative to the full sweep above.
		if cl.Vector >= 0 && cl.Vector < len(seq) {
			bad := sim.NewSerial(c)
			bad.InjectFault(cl.Fault)
			var out logic.Vector
			for i := 0; i <= cl.Vector; i++ {
				out = bad.Step(seq[i])
			}
			rec.Expected = goodOut[cl.Vector].Clone()
			rec.Observed = out
		}
	}
	return rec
}

// miscompares applies HITEC's conservative detection rule: some primary
// output must carry a binary value in both machines, and the values must
// differ. Unknowns never count.
func miscompares(good, bad logic.Vector) bool {
	for i, g := range good {
		if g.IsKnown() && bad[i].IsKnown() && g != bad[i] {
			return true
		}
	}
	return false
}
