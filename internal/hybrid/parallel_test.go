package hybrid

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gahitec/internal/fault"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// sameMetrics asserts two recorders agree on everything deterministic:
// every counter, span count and value distribution. Wall-clock phase
// durations are stripped first (stripWallClock), as in the resume tests.
func sameMetrics(t *testing.T, label string, want, got *obs.Recorder) {
	t.Helper()
	wm, gm := want.MetricsSnapshot(), got.MetricsSnapshot()
	stripWallClock(wm)
	stripWallClock(gm)
	if !reflect.DeepEqual(wm.Counters, gm.Counters) {
		t.Errorf("%s: counters diverged:\nserial:   %v\nparallel: %v", label, wm.Counters, gm.Counters)
	}
	if !reflect.DeepEqual(wm.Spans, gm.Spans) {
		t.Errorf("%s: spans diverged:\nserial:   %v\nparallel: %v", label, wm.Spans, gm.Spans)
	}
	if !reflect.DeepEqual(wm.Histograms, gm.Histograms) {
		t.Errorf("%s: histograms diverged:\nserial:   %+v\nparallel: %+v", label, wm.Histograms, gm.Histograms)
	}
}

// The ordered-commit contract: a parallel run's outputs are bit-identical
// to the serial run's for the same seed, whatever the worker count. The
// config uses work-bounded budgets (generous TimePerFault), as the Resume
// contract requires — wall-clock limits can bind differently under CPU
// contention.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	run := func(workers int) (*Result, *obs.Recorder) {
		rec := obs.New(nil)
		cfg := deterministicConfig(41)
		cfg.Obs = rec
		cfg.Audit = true
		cfg.Workers = workers
		return Run(c, faults, cfg), rec
	}

	serial, serialRec := run(1)
	for _, workers := range []int{2, 8} {
		par, parRec := run(workers)
		sameResults(t, serial, par)
		for i, f := range serial.Untestable {
			if par.Untestable[i] != f {
				t.Fatalf("workers=%d: untestable %d diverged", workers, i)
			}
		}
		if serial.Phases != par.Phases {
			t.Errorf("workers=%d: phase stats diverged:\nserial:   %+v\nparallel: %+v",
				workers, serial.Phases, par.Phases)
		}
		if !reflect.DeepEqual(serial.Detections, par.Detections) {
			t.Errorf("workers=%d: detection logs diverged", workers)
		}
		if serial.Audit.Confirmed != par.Audit.Confirmed || serial.Audit.Unverified != par.Audit.Unverified {
			t.Errorf("workers=%d: audit diverged: %+v vs %+v", workers, serial.Audit, par.Audit)
		}
		sameMetrics(t, fmt.Sprintf("workers=%d", workers), serialRec, parRec)
	}
}

// The parallel preprocessing screen marks exactly the untestables the
// serial screen marks, in the same order.
func TestParallelPreprocessMatchesSerial(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	run := func(workers int) *Result {
		cfg := deterministicConfig(42)
		cfg.PreprocessUntestable = true
		cfg.Workers = workers
		return Run(c, faults, cfg)
	}
	serial := run(1)
	par := run(4)
	sameResults(t, serial, par)
	if serial.Phases.Preprocessed != par.Phases.Preprocessed {
		t.Fatalf("preprocessed %d serially, %d in parallel",
			serial.Phases.Preprocessed, par.Phases.Preprocessed)
	}
	for i, f := range serial.Untestable {
		if par.Untestable[i] != f {
			t.Fatalf("untestable order diverged at %d", i)
		}
	}
}

// Resume under concurrency: interrupt a workers=4 run mid-pass (the
// SIGINT path), then resume with workers=1 and workers=8. Both resumed
// runs — and their merged telemetry — must equal the uninterrupted serial
// run's, so worker count provably stays outside the reproducibility
// contract even across an interrupt boundary.
func TestParallelResumeAcrossWorkerCounts(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	mkCfg := func(workers int, rec *obs.Recorder) Config {
		cfg := deterministicConfig(43)
		cfg.Workers = workers
		cfg.Obs = rec
		return cfg
	}

	fullRec := obs.New(nil)
	full := Run(c, faults, mkCfg(1, fullRec))

	// Interrupt a parallel run mid-merge: cancel once a handful of fault
	// boundaries have committed, keeping the last snapshot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	boundaries := 0
	cfg := mkCfg(4, obs.New(nil))
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(ck *Checkpoint) {
		last = ck
		boundaries++
		if boundaries == 5 {
			cancel()
		}
	}
	part := RunCtx(ctx, c, faults, cfg)
	if !part.Interrupted {
		t.Skip("run finished before the interrupt landed")
	}
	if last == nil {
		t.Fatal("no snapshot emitted before interrupt")
	}

	for _, workers := range []int{1, 8} {
		rec := obs.New(nil)
		res, err := Resume(context.Background(), c, faults, mkCfg(workers, rec), last)
		if err != nil {
			t.Fatalf("resume with workers=%d: %v", workers, err)
		}
		sameResults(t, full, res)
		if full.Phases != res.Phases {
			t.Errorf("resume workers=%d: phase stats diverged:\nfull:    %+v\nresumed: %+v",
				workers, full.Phases, res.Phases)
		}
		sameMetrics(t, "resume", fullRec, rec)
	}
}

// Parallel progress reporting: the fault counter aggregates monotonically
// across workers (no backwards jumps), and each pass opens with the
// zero-ETA sentinel callback before any fault has committed.
func TestParallelProgressMonotone(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var got []Progress
	cfg := deterministicConfig(44)
	cfg.Workers = 4
	cfg.Progress = func(p Progress) { got = append(got, p) }
	res := Run(c, faults, cfg)

	if len(got) == 0 {
		t.Fatal("no progress callbacks")
	}
	passStarts := 0
	prev := Progress{FaultIndex: -1}
	for i, p := range got {
		if p.Pass < prev.Pass {
			t.Fatalf("progress %d pass regressed: %+v after %+v", i, p, prev)
		}
		if p.Pass > prev.Pass {
			// First callback of the pass is the sentinel: nothing committed
			// yet, ETA unknown (rendered as "--:--" by cmd/atpg).
			passStarts++
			if p.ETA != 0 {
				t.Fatalf("progress %d: pass %d opened with ETA %s, want the zero sentinel", i, p.Pass, p.ETA)
			}
		} else if p.FaultIndex <= prev.FaultIndex {
			t.Fatalf("progress %d fault counter jumped backwards: %+v after %+v", i, p, prev)
		}
		if p.Detected < prev.Detected || p.Vectors < prev.Vectors {
			t.Fatalf("progress %d counters regressed: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	if passStarts != len(cfg.Passes) {
		t.Fatalf("%d pass-start sentinels for %d passes", passStarts, len(cfg.Passes))
	}
	if prev.Detected != res.Passes[len(res.Passes)-1].Detected {
		t.Errorf("final progress detected %d, result says %d",
			prev.Detected, res.Passes[len(res.Passes)-1].Detected)
	}
}

// An injected engine panic during a parallel run is isolated exactly as in
// the serial run: the affected faults are quarantined with crash-repro
// bundles and the run completes.
func TestParallelInjectedPanicQuarantined(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 0, runctl.ActPanic) // every search panics
	cfg := deterministicConfig(45)
	cfg.Workers = 4
	cfg.Hooks = hooks
	var bundles []*supervise.Bundle
	cfg.Bundle = func(b *supervise.Bundle) { bundles = append(bundles, b) }
	res := Run(c, faults, cfg)

	if res.Interrupted {
		t.Fatal("injected panics interrupted the parallel run")
	}
	if len(res.Passes) != len(cfg.Passes) {
		t.Fatalf("run stopped after %d of %d passes", len(res.Passes), len(cfg.Passes))
	}
	// Every committed targeted attempt panicked: once per fault per pass.
	if want := res.TotalFaults * len(cfg.Passes); res.Phases.Panics != want {
		t.Fatalf("Phases.Panics = %d, want %d", res.Phases.Panics, want)
	}
	if res.FirstPanic == "" {
		t.Fatal("FirstPanic empty")
	}
	if res.Retry.Quarantined != res.TotalFaults {
		t.Fatalf("%d faults quarantined, want all %d", res.Retry.Quarantined, res.TotalFaults)
	}
	if len(bundles) != res.TotalFaults {
		t.Fatalf("%d bundles captured, want one per fault (%d)", len(bundles), res.TotalFaults)
	}
	for _, q := range res.Quarantine {
		if q.Reason != ReasonPanic || q.Bundle == nil {
			t.Fatalf("quarantine entry missing panic reason or bundle: %+v", q)
		}
	}
}

// A stalled search in one worker is watchdog-preempted without stalling its
// siblings or the commit pipeline; the run completes with the stalled
// faults quarantined.
func TestParallelWatchdogPreemptsStalledWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock watchdog thresholds are unreliable under -short/-race slowdown")
	}
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 0, runctl.ActSleep, 30*time.Second) // every search stalls
	cfg := deterministicConfig(46)
	cfg.Passes = cfg.Passes[:1]
	cfg.Workers = 4
	cfg.Hooks = hooks
	cfg.Watchdog = supervise.Watchdog{Stall: 50 * time.Millisecond}

	start := time.Now()
	res := Run(c, faults, cfg)
	if el := time.Since(start); el > 20*time.Second {
		t.Errorf("run waited out the injected sleeps (%s) instead of preempting", el)
	}
	if res.Interrupted {
		t.Fatal("preemptions interrupted the parallel run")
	}
	if res.Phases.Preempted != res.TotalFaults {
		t.Fatalf("Phases.Preempted = %d, want every fault (%d)", res.Phases.Preempted, res.TotalFaults)
	}
	for _, q := range res.Quarantine {
		if q.Reason != ReasonPreempt {
			t.Fatalf("quarantine reason %v, want preempt", q.Reason)
		}
	}
}

// Under forced memory pressure the scheduler throttles the worker pool
// before shedding any search effort, logs every decision with worker
// counts, and the whole throttling schedule is deterministic: two parallel
// runs with the same pressure schedule produce identical outputs and
// identical decision logs. (A governed parallel run may legitimately
// differ from the governed serial run under pressure — it sheds
// concurrency where the serial run sheds effort — which is exactly the
// graceful-degradation contract.)
func TestParallelSchedulerThrottlesUnderPressure(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	// Pressure holds for a few fault boundaries, then relief.
	pressureProbe := func() func() uint64 {
		n := 0
		return func() uint64 {
			n++
			if n > 3 && n <= 8 {
				return 500
			}
			return 10
		}
	}

	run := func(workers int) *Result {
		cfg := deterministicConfig(47)
		cfg.Workers = workers
		cfg.Governor = &supervise.Governor{SoftBytes: 100, Probe: pressureProbe()}
		return Run(c, faults, cfg)
	}
	a := run(4)
	b := run(4)
	sameResults(t, a, b)
	if !reflect.DeepEqual(a.Degradations, b.Degradations) {
		t.Fatalf("decision logs diverged:\n%+v\n%+v", a.Degradations, b.Degradations)
	}

	throttles := 0
	for _, d := range a.Degradations {
		if d.ToWorkers < d.FromWorkers {
			throttles++
			if d.To != "normal" {
				t.Fatalf("effort shed while still throttling workers: %+v", d)
			}
		}
		if d.To != "normal" && d.ToWorkers > 1 {
			t.Fatalf("effort shed before the pool was serial: %+v", d)
		}
	}
	if throttles == 0 {
		t.Fatalf("no worker-throttle decisions under pressure: %+v", a.Degradations)
	}

	// The serial governed run sheds effort directly: level changes only,
	// no worker fields on its decisions.
	serial := run(1)
	levelChanges := 0
	for _, d := range serial.Degradations {
		if d.FromWorkers != 0 || d.ToWorkers != 0 {
			t.Fatalf("serial governor decision carries worker fields: %+v", d)
		}
		levelChanges++
	}
	if levelChanges == 0 {
		t.Fatal("serial governed run logged no decisions under the same pressure")
	}
}
