package hybrid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"gahitec/internal/fault"
	"gahitec/internal/obs"
)

// The correlation contract: a run's ID rides the checkpoint journal, a
// resume with no explicit ID adopts it, and every trace line of both the
// interrupted and the resumed halves carries the same ID — so telemetry from
// one logical run slices as one stream however many times it was restarted.
func TestRunIDSurvivesResume(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	runID := obs.NewRunID()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstTrace bytes.Buffer
	var last *Checkpoint
	boundaries := 0
	cfg := deterministicConfig(31)
	cfg.RunID = runID
	cfg.Obs = obs.New(&firstTrace)
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(ck *Checkpoint) {
		last = ck
		boundaries++
		if boundaries == 3 {
			cancel()
		}
	}
	part := RunCtx(ctx, c, faults, cfg)
	if !part.Interrupted {
		t.Skip("run finished before the interrupt landed")
	}
	if last == nil {
		t.Fatal("no snapshot emitted before interrupt")
	}
	if last.RunID != runID {
		t.Fatalf("checkpoint run ID = %q, want %q", last.RunID, runID)
	}

	// Resume with an EMPTY Config.RunID: the journal's identity must win.
	var resumeTrace bytes.Buffer
	rcfg := deterministicConfig(31)
	rcfg.Obs = obs.New(&resumeTrace)
	if _, err := Resume(context.Background(), c, faults, rcfg, last); err != nil {
		t.Fatal(err)
	}
	if got := rcfg.Obs.RunID(); got != runID {
		t.Errorf("resumed recorder run ID = %q, want %q", got, runID)
	}

	for name, trace := range map[string]string{
		"interrupted": firstTrace.String(),
		"resumed":     resumeTrace.String(),
	} {
		sc := bufio.NewScanner(strings.NewReader(trace))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lines := 0
		for sc.Scan() {
			var e obs.Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("%s line %d: %v", name, lines, err)
			}
			if e.Run != runID {
				t.Fatalf("%s line %d run = %q, want %q", name, lines, e.Run, runID)
			}
			lines++
		}
		if lines == 0 {
			t.Fatalf("%s trace is empty", name)
		}
	}
}
