package hybrid

import (
	"testing"
	"time"

	"gahitec/internal/fault"
	"gahitec/internal/logic"
)

func TestFaultCoverageEmpty(t *testing.T) {
	r := &Result{TotalFaults: 0, Passes: []PassStats{{}}}
	if r.FaultCoverage() != 0 {
		t.Error("coverage of empty fault list should be 0")
	}
}

func TestGAHITECConfigClampsX(t *testing.T) {
	cfg := GAHITECConfig(0, 1)
	if cfg.Passes[0].SeqLen < 1 {
		t.Error("sequence length not clamped")
	}
}

func TestHITECConfigDefaultPasses(t *testing.T) {
	cfg := HITECConfig(0, 1)
	if len(cfg.Passes) != 3 {
		t.Errorf("default passes = %d", len(cfg.Passes))
	}
}

// An empty fault list runs to completion with empty stats.
func TestRunEmptyFaultList(t *testing.T) {
	c := mustParse(t, s27, "s27")
	cfg := GAHITECConfig(8, 0.01)
	res := Run(c, nil, cfg)
	last := res.Passes[len(res.Passes)-1]
	if last.Detected != 0 || last.Untestable != 0 || last.Aborted != 0 {
		t.Fatalf("empty run produced stats %+v", last)
	}
}

// A single-fault list works and the time limits are respected loosely: the
// run must finish far faster than a pathological bound.
func TestRunSingleFault(t *testing.T) {
	c := mustParse(t, s27, "s27")
	g17, _ := c.Lookup("G17")
	f := fault.Fault{Node: g17, Pin: fault.StemPin, Stuck: logic.Zero}
	cfg := GAHITECConfig(8, 0.01)
	cfg.Seed = 3
	start := time.Now()
	res := Run(c, []fault.Fault{f}, cfg)
	if time.Since(start) > 30*time.Second {
		t.Fatal("single-fault run took implausibly long")
	}
	last := res.Passes[len(res.Passes)-1]
	if last.Detected+last.Untestable+last.Aborted != 1 {
		t.Fatalf("accounting: %+v", last)
	}
	if last.Detected != 1 {
		t.Logf("G17 s-a-0 not detected (status: %d unt, %d abort)", last.Untestable, last.Aborted)
	}
}

// Custom pass schedules work: one GA-only pass.
func TestCustomSchedule(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := Config{
		Passes: []Pass{{
			Method: MethodGA, TimePerFault: 50 * time.Millisecond,
			Population: 64, Generations: 4, SeqLen: 8,
			MaxBacktracks: 500, JustifyAttempts: 1,
		}},
		Seed: 5,
	}
	res := Run(c, faults, cfg)
	if len(res.Passes) != 1 {
		t.Fatalf("passes = %d", len(res.Passes))
	}
	if res.Phases.DetJustifyCalls != 0 {
		t.Error("GA-only schedule called deterministic justification")
	}
}

// The Continue hook stops the run after the pass it rejects.
func TestContinueHookStops(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(8, 0.01)
	cfg.Seed = 12
	calls := 0
	cfg.Continue = func(p PassStats) bool {
		calls++
		return false // stop after pass 1
	}
	res := Run(c, faults, cfg)
	if len(res.Passes) != 1 {
		t.Fatalf("run continued to %d passes", len(res.Passes))
	}
	if calls != 1 {
		t.Fatalf("Continue called %d times", calls)
	}
}

// PassStats Aborted excludes proven untestables.
func TestAbortedExcludesUntestable(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn = AND(a, b)\nz = OR(a, n)\nq = DFF(z)\n"
	c := mustParse(t, src, "redu")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(4, 0.02)
	cfg.Seed = 6
	res := Run(c, faults, cfg)
	last := res.Passes[len(res.Passes)-1]
	if last.Untestable == 0 {
		t.Skip("no untestables proven in this configuration")
	}
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatalf("accounting violated: %+v vs %d", last, res.TotalFaults)
	}
}
