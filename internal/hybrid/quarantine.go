package hybrid

import (
	"fmt"

	"gahitec/internal/audit"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/obs"
	"gahitec/internal/supervise"
)

// QuarantineReason classifies why a fault was set aside for the end-of-run
// retry phase.
type QuarantineReason uint8

const (
	// ReasonBudget: every pass that targeted the fault ran out of its
	// per-fault budget (wall clock, backtracks, or justification attempts)
	// without reaching a decision.
	ReasonBudget QuarantineReason = iota
	// ReasonPanic: an engine panic was recovered while targeting the fault.
	ReasonPanic
	// ReasonAudit: the independent audit demoted the fault's detection claim
	// — the serial reference simulator could not reproduce it.
	ReasonAudit
	// ReasonPreempt: the watchdog hard-preempted the fault's search (ceiling
	// or stall) before it reached a decision.
	ReasonPreempt
)

// NumQuarantineReasons is the number of distinct reasons, for per-reason
// accounting arrays.
const NumQuarantineReasons = 4

func (q QuarantineReason) String() string {
	switch q {
	case ReasonPanic:
		return "panic"
	case ReasonAudit:
		return "audit"
	case ReasonPreempt:
		return "preempt"
	default:
		return "budget"
	}
}

func parseReason(s string) (QuarantineReason, error) {
	switch s {
	case "budget":
		return ReasonBudget, nil
	case "panic":
		return ReasonPanic, nil
	case "audit":
		return ReasonAudit, nil
	case "preempt":
		return ReasonPreempt, nil
	}
	return 0, fmt.Errorf("hybrid: unknown quarantine reason %q", s)
}

// Quarantined is one fault held for retry, with its final disposition.
type Quarantined struct {
	Fault    fault.Fault
	Reason   QuarantineReason // why it is held (audit overrides budget/panic)
	Attempts int              // retry attempts spent on it
	// Resolved reports that the fault was decided after quarantine: detected
	// (for audit demotions, re-detected with a serially confirmed test) or
	// proven untestable.
	Resolved bool

	// Bundle is the crash-repro bundle captured when the fault was
	// quarantined: the deterministic description of the failing attempt.
	// Retries replay from it (its forked sub-seed) instead of re-deriving
	// state, and it rides in the checkpoint so a resumed run retries
	// identically.
	Bundle *supervise.Bundle
}

// retrySeed is the random stream of the attempt-th retry: the quarantined
// attempt's own forked sub-seed offset per attempt, so retries replay from
// the bundle deterministically without touching the master stream.
func (q *Quarantined) retrySeed(attempt int) int64 {
	if q.Bundle != nil {
		return q.Bundle.SubSeed + int64(attempt)
	}
	// No bundle (quarantine restored from a degenerate journal): derive a
	// deterministic seed from the fault site instead.
	return int64(q.Fault.Node)<<16 + int64(q.Fault.Pin)<<2 + int64(attempt)
}

// RetryStats summarizes the quarantine-and-retry phase of a run.
type RetryStats struct {
	Quarantined int // faults ever quarantined
	Retried     int // individual retry attempts executed
	Recovered   int // quarantined faults resolved by a retry attempt
	Exhausted   int // faults still unresolved when the retry budget ran out

	// Highest escalated per-fault budgets actually used (zero when no retry
	// ran).
	EscalatedTime       int64 // nanoseconds
	EscalatedBacktracks int
}

// quarantineFault records f for end-of-run retry. Re-quarantining keeps the
// original reason, except that an audit demotion overrides a budget or panic
// reason: a fault that aborted in an early pass and was later spuriously
// "detected" is no longer in the simulator's fault list, and only the audit
// reason routes it back into the retry queue.
func (r *runner) quarantineFault(f fault.Fault, reason QuarantineReason) *Quarantined {
	if _, seen := r.quar[f]; !seen {
		r.cfg.Obs.Counter("quarantine."+reason.String(), 1)
		r.cfg.Obs.Point("quarantine", "captured", r.faultLabel(f), 0, obs.Attrs{
			"reason": float64(reason),
		})
	}
	return r.captureQuarantine(f, reason)
}

// captureQuarantine is quarantineFault without the telemetry — the restore
// path uses it directly, because the checkpoint's metrics snapshot already
// counts the restored captures.
func (r *runner) captureQuarantine(f fault.Fault, reason QuarantineReason) *Quarantined {
	if q, ok := r.quar[f]; ok {
		if reason == ReasonAudit {
			q.Reason = ReasonAudit
		}
		return q
	}
	q := &Quarantined{Fault: f, Reason: reason}
	r.quar[f] = q
	r.quarOrder = append(r.quarOrder, q)
	return q
}

// runAudit replays every detection claim on the serial reference simulator
// and quarantines demoted claims for retry. It returns false when the run
// context was cancelled mid-audit.
func (r *runner) runAudit() bool {
	claims := make([]audit.Claim, 0, len(r.res.Detections))
	for _, d := range r.res.Detections {
		claims = append(claims, audit.Claim{Fault: d.Fault, Vector: d.Vector})
	}
	rep, err := audit.VerifyObs(r.ctx, r.c, r.res.TestSet, claims, r.cfg.Obs)
	if err != nil {
		return false
	}
	r.res.Audit = rep
	for _, rec := range rep.Records {
		if rec.Verdict != audit.Unverified {
			continue
		}
		q := r.quarantineFault(rec.Fault, ReasonAudit)
		r.captureAuditBundle(q, rec)
	}
	return true
}

// captureAuditBundle serializes the miscompare as a crash-repro bundle: the
// full test set plus the demoted claim, replayable on the serial reference
// in isolation. It replaces any earlier (budget/panic/preempt) bundle on the
// entry — the miscompare artifact supersedes it — but not a previous audit
// bundle for the same fault.
func (r *runner) captureAuditBundle(q *Quarantined, rec audit.Record) {
	if q.Bundle != nil && q.Bundle.Kind == supervise.KindAuditMiscompare {
		return
	}
	b := r.newBundle(supervise.KindAuditMiscompare, "miscompare", rec.Fault)
	b.SubSeed = r.rng.Int63() // seeds the retry stream; the replay itself is data-driven
	b.ClaimVector = rec.Claimed
	b.TestSet = make([][]string, len(r.res.TestSet))
	for i, seq := range r.res.TestSet {
		b.TestSet[i] = saveSeq(seq)
	}
	q.Bundle = b
	r.emitBundle(b)
}

// retryQueue returns the quarantined faults still worth retrying: not yet
// resolved, not proven untestable, and (for budget/panic quarantines) still
// undetected. Audit demotions are always retried — the bit-parallel
// simulator believes them detected, so only an accepted (serially confirmed)
// new test resolves them.
func (r *runner) retryQueue() []*Quarantined {
	remaining := make(map[fault.Fault]bool, len(r.fsim.Remaining()))
	for _, f := range r.fsim.Remaining() {
		remaining[f] = true
	}
	var out []*Quarantined
	for _, q := range r.quarOrder {
		if q.Resolved || r.untestable[q.Fault] {
			continue
		}
		if q.Reason == ReasonAudit || remaining[q.Fault] {
			out = append(out, q)
		}
	}
	return out
}

// retryQuarantined re-targets unresolved quarantined faults with per-attempt
// escalated budgets (cfg.Retry). Base budgets default to the schedule's last
// pass, so even the first retry runs with more room than the pass that gave
// up. Returns false when the run context expired mid-retry; the retry phase
// is deliberately not checkpointed — a resumed run redoes it from the saved
// quarantine list.
func (r *runner) retryQuarantined() bool {
	esc := r.cfg.Retry
	if esc.MaxAttempts <= 0 || len(r.quarOrder) == 0 {
		return true
	}
	var last Pass
	if n := len(r.cfg.Passes); n > 0 {
		last = r.cfg.Passes[n-1]
	}
	if esc.BaseTime == 0 {
		esc.BaseTime = last.TimePerFault
	}
	if esc.BaseBacktracks == 0 {
		esc.BaseBacktracks = last.MaxBacktracks
	}
	retried := false
	for attempt := 1; attempt <= esc.MaxAttempts; attempt++ {
		queue := r.retryQueue()
		if len(queue) == 0 {
			break
		}
		pass := Pass{
			Method:          MethodDet,
			TimePerFault:    esc.TimeAt(attempt),
			MaxBacktracks:   esc.BacktracksAt(attempt),
			JustifyAttempts: last.JustifyAttempts,
		}
		retryPass := len(r.cfg.Passes) + 1
		for _, q := range queue {
			if r.expired() {
				return false
			}
			q.Attempts++
			r.res.Retry.Retried++
			r.res.Retry.EscalatedTime = int64(pass.TimePerFault)
			r.res.Retry.EscalatedBacktracks = pass.MaxBacktracks
			retried = true
			sp := r.cfg.Obs.StartSpan("target", r.faultLabel(q.Fault), retryPass)
			// Retries replay from the quarantine bundle: the attempt's own
			// forked sub-seed (offset per attempt) instead of a fresh master
			// draw, so the retry phase is deterministic given the quarantine
			// list alone — exactly what a resumed run restores.
			_, accepted, outcome := r.superviseTarget(q.Fault, pass, retryPass, q.retrySeed(attempt))
			if r.expired() {
				sp.End("interrupted", nil)
				return false
			}
			if accepted {
				sp.End(outcome, obs.Attrs{"attempt": float64(attempt)})
			} else {
				sp.End(outcome, nil)
			}
			if accepted || outcome == "untestable" {
				q.Resolved = true
			}
		}
	}
	if retried {
		// The retry phase reports as one extra row after the schedule.
		remaining := 0
		for _, f := range r.fsim.Remaining() {
			if !r.untestable[f] {
				remaining++
			}
		}
		r.res.Passes = append(r.res.Passes, PassStats{
			Pass:       len(r.cfg.Passes) + 1,
			Detected:   r.fsim.NumDetected(),
			Vectors:    r.fsim.NumVectors(),
			Elapsed:    r.elapsed(),
			Untestable: len(r.res.Untestable),
			Aborted:    remaining,
		})
	}
	return true
}

// finalizeQuarantine computes each quarantine entry's final resolution and
// publishes the list and the retry counters on the Result. Budget and panic
// quarantines resolve when the fault ends up detected or proven untestable
// (by a retry or incidentally); audit demotions only through an explicit
// re-confirmation, recorded by the retry loop.
func (r *runner) finalizeQuarantine() {
	if len(r.quarOrder) == 0 {
		return
	}
	remaining := make(map[fault.Fault]bool, len(r.fsim.Remaining()))
	for _, f := range r.fsim.Remaining() {
		remaining[f] = true
	}
	r.res.Retry.Quarantined = len(r.quarOrder)
	for _, q := range r.quarOrder {
		if r.untestable[q.Fault] {
			q.Resolved = true
		} else if q.Reason != ReasonAudit && !remaining[q.Fault] {
			q.Resolved = true
		}
		switch {
		case q.Resolved && q.Attempts > 0:
			r.res.Retry.Recovered++
		case !q.Resolved:
			r.res.Retry.Exhausted++
		}
		r.res.Quarantine = append(r.res.Quarantine, *q)
	}
}

// snapshotDetections copies the fault simulator's detection log into the
// Result — the claims the audit verifies.
func (r *runner) snapshotDetections() {
	r.res.Detections = append([]faultsim.Detection(nil), r.fsim.Detections()...)
}
