package hybrid

import (
	"testing"
	"time"

	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/simgen"
)

func TestAlternatingOnS27(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	res := RunAlternating(c, faults, AlternatingConfig{
		Sim:             simgen.Options{MaxRounds: 100},
		DetTimePerFault: 50 * time.Millisecond,
		MaxInterludes:   10,
		Seed:            1,
	})
	if res.Detected == 0 {
		t.Fatal("alternating hybrid detected nothing")
	}
	// Replay the test set: detections must match.
	replay := faultsim.New(c, faults)
	for _, seq := range res.TestSet {
		replay.ApplySequence(seq)
	}
	if replay.NumDetected() != res.Detected {
		t.Fatalf("replay %d != reported %d", replay.NumDetected(), res.Detected)
	}
	if res.Vectors == 0 || res.SimRounds == 0 {
		t.Error("counters empty")
	}
	t.Logf("alternating: det=%d/%d vec=%d rounds=%d interludes=%d unt=%d",
		res.Detected, len(faults), res.Vectors, res.SimRounds, res.Interludes, res.Untestable)
}

func TestAlternatingTerminatesOnRedundant(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nn = AND(a, b)\nz = OR(a, n)\n"
	c := mustParse(t, src, "red")
	faults := fault.Collapse(c)
	done := make(chan *AlternatingResult, 1)
	go func() {
		done <- RunAlternating(c, faults, AlternatingConfig{
			Sim:             simgen.Options{MaxRounds: 50},
			DetTimePerFault: 20 * time.Millisecond,
			MaxInterludes:   5,
			Seed:            2,
		})
	}()
	select {
	case res := <-done:
		if res.Untestable == 0 {
			t.Log("redundant fault not proven untestable within interlude limits (acceptable)")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("alternating hybrid hung on a redundant circuit")
	}
}

func TestAlternatingDeterministicSeed(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := AlternatingConfig{
		Sim:             simgen.Options{MaxRounds: 30},
		DetTimePerFault: 200 * time.Millisecond,
		MaxInterludes:   4,
		Seed:            7,
	}
	a := RunAlternating(c, faults, cfg)
	b := RunAlternating(c, faults, cfg)
	if a.Detected != b.Detected || a.Vectors != b.Vectors {
		// Deadline-based interludes make strict determinism impossible on a
		// loaded machine; allow slack but flag gross divergence.
		if diff := a.Detected - b.Detected; diff > 3 || diff < -3 {
			t.Errorf("runs diverged: %d vs %d detected", a.Detected, b.Detected)
		}
	}
}
