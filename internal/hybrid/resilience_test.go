package hybrid

import (
	"context"
	"strings"
	"testing"
	"time"

	"gahitec/internal/fault"
	"gahitec/internal/runctl"
)

// deterministicConfig is a schedule whose outcome depends only on the seed:
// per-fault wall-clock limits are generous enough never to bind, so
// backtrack budgets and the GA's seeded randomness decide everything.
func deterministicConfig(seed int64) Config {
	return Config{
		Passes: []Pass{
			{Method: MethodGA, TimePerFault: time.Hour, Population: 64, Generations: 4, SeqLen: 8, MaxBacktracks: 1000, JustifyAttempts: 2},
			{Method: MethodDet, TimePerFault: time.Hour, MaxBacktracks: 4000, JustifyAttempts: 3},
		},
		Seed: seed,
	}
}

func sameResults(t *testing.T, a, b *Result) {
	t.Helper()
	la, lb := a.Passes[len(a.Passes)-1], b.Passes[len(b.Passes)-1]
	if la.Detected != lb.Detected || la.Vectors != lb.Vectors || la.Untestable != lb.Untestable {
		t.Fatalf("final stats diverged: %+v vs %+v", la, lb)
	}
	if len(a.TestSet) != len(b.TestSet) {
		t.Fatalf("test set size diverged: %d vs %d", len(a.TestSet), len(b.TestSet))
	}
	for i := range a.TestSet {
		if len(a.TestSet[i]) != len(b.TestSet[i]) {
			t.Fatalf("sequence %d length diverged", i)
		}
		for j := range a.TestSet[i] {
			if a.TestSet[i][j].String() != b.TestSet[i][j].String() {
				t.Fatalf("sequence %d vector %d diverged: %s vs %s",
					i, j, a.TestSet[i][j], b.TestSet[i][j])
			}
		}
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d diverged", i)
		}
	}
	if len(a.Untestable) != len(b.Untestable) {
		t.Fatalf("untestable count diverged: %d vs %d", len(a.Untestable), len(b.Untestable))
	}
}

// An injected engine panic must abort only the fault that hit it: the run
// completes, counts the panic, and keeps the first stack trace.
func TestInjectedPanicIsolatedToOneFault(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 3, runctl.ActPanic)
	cfg := deterministicConfig(1)
	cfg.Hooks = hooks
	res := Run(c, faults, cfg)

	if res.Interrupted {
		t.Fatal("panic interrupted the run instead of one fault")
	}
	if len(res.Passes) != len(cfg.Passes) {
		t.Fatalf("run stopped after %d of %d passes", len(res.Passes), len(cfg.Passes))
	}
	if res.Phases.Panics != 1 {
		t.Fatalf("Phases.Panics = %d, want 1", res.Phases.Panics)
	}
	if !strings.Contains(res.FirstPanic, "injected panic") || !strings.Contains(res.FirstPanic, "goroutine") {
		t.Fatalf("FirstPanic missing message or stack:\n%s", res.FirstPanic)
	}
	// Accounting still closes: every fault is detected, untestable or
	// undecided (the panicked fault lands in the undecided bucket).
	last := res.Passes[len(res.Passes)-1]
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatalf("accounting broken after panic: %+v vs %d", last, res.TotalFaults)
	}
}

// A panic during the preprocessing screen skips that fault, not the run.
func TestPreprocessPanicIsolated(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 1, runctl.ActPanic)
	cfg := deterministicConfig(1)
	cfg.PreprocessUntestable = true
	cfg.Hooks = hooks
	res := Run(c, faults, cfg)
	if res.Phases.Panics != 1 || len(res.Passes) != len(cfg.Passes) {
		t.Fatalf("panics=%d passes=%d", res.Phases.Panics, len(res.Passes))
	}
}

// Injected budget expiry makes the targeted search abort without killing
// anything; the fault is left undecided.
func TestInjectedExpiryAbortsSearch(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 0, runctl.ActExpire) // every targeted search expires
	cfg := deterministicConfig(1)
	cfg.Hooks = hooks
	res := Run(c, faults, cfg)

	if res.Phases.ExciteProp != 0 {
		t.Fatalf("expired searches still produced %d propagation successes", res.Phases.ExciteProp)
	}
	last := res.Passes[len(res.Passes)-1]
	if last.Detected != 0 || last.Aborted != res.TotalFaults {
		t.Fatalf("expected everything undecided, got %+v", last)
	}
}

// A cancelled context interrupts the run at a fault boundary and emits the
// last consistent snapshot.
func TestCancelledContextInterruptsRun(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var snaps int
	cfg := deterministicConfig(1)
	cfg.Checkpoint = func(*Checkpoint) { snaps++ }
	res := RunCtx(ctx, c, faults, cfg)
	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if len(res.Passes) != 0 {
		t.Fatalf("cancelled-before-start run completed %d passes", len(res.Passes))
	}
}

// The core resume invariant: a run checkpointed mid-pass and resumed from
// that snapshot produces the same final detected-fault count and the same
// test set, vector for vector, as the same-seed run left uninterrupted.
func TestResumeBitIdenticalMidPass(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	full := Run(c, faults, deterministicConfig(3))

	var snaps []*Checkpoint
	cfg := deterministicConfig(3)
	cfg.Checkpoint = func(ck *Checkpoint) { snaps = append(snaps, ck) }
	cfg.CheckpointEvery = 1
	Run(c, faults, cfg)
	if len(snaps) < 4 {
		t.Fatalf("only %d snapshots captured", len(snaps))
	}

	// Resume from several positions, including mid-pass ones.
	for _, idx := range []int{1, len(snaps) / 3, len(snaps) / 2, len(snaps) - 2} {
		ck := snaps[idx]
		res, err := Resume(context.Background(), c, faults, deterministicConfig(3), ck)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", idx, err)
		}
		if res.Interrupted {
			t.Fatalf("resumed run %d marked interrupted", idx)
		}
		sameResults(t, full, res)
	}
}

// Interruption via context cancellation, then resume from the emitted
// snapshot: the combined run must match the uninterrupted one.
func TestInterruptThenResumeMatchesUninterrupted(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	full := Run(c, faults, deterministicConfig(7))

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	boundaries := 0
	cfg := deterministicConfig(7)
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(ck *Checkpoint) {
		last = ck
		boundaries++
		if boundaries == 5 {
			cancel() // simulate SIGINT mid-pass
		}
	}
	part := RunCtx(ctx, c, faults, cfg)
	cancel()
	if !part.Interrupted {
		t.Skip("run finished before the interrupt landed")
	}
	if last == nil {
		t.Fatal("no snapshot emitted before interrupt")
	}

	res, err := Resume(context.Background(), c, faults, deterministicConfig(7), last)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, res)
}

// Resuming the snapshot of a completed run is a no-op that reproduces the
// final statistics.
func TestResumeCompletedRun(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var last *Checkpoint
	cfg := deterministicConfig(11)
	cfg.Checkpoint = func(ck *Checkpoint) { last = ck }
	full := Run(c, faults, cfg)

	res, err := Resume(context.Background(), c, faults, deterministicConfig(11), last)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, res)
	if res.Phases != full.Phases {
		t.Fatalf("phases diverged: %+v vs %+v", res.Phases, full.Phases)
	}
}

// Checkpoints from a different circuit, seed or schedule are rejected.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var last *Checkpoint
	cfg := deterministicConfig(1)
	cfg.Checkpoint = func(ck *Checkpoint) { last = ck }
	Run(c, faults, cfg)

	bad := *last
	bad.Seed = 99
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("mismatched seed accepted")
	}
	bad = *last
	bad.Circuit = "other"
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("mismatched circuit accepted")
	}
	bad = *last
	bad.TotalFaults++
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("mismatched fault list accepted")
	}
	bad = *last
	bad.Version = CheckpointVersion + 1
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("mismatched version accepted")
	}
	bad = *last
	bad.TestSet = append([][]string{{"not a vector"}}, bad.TestSet...)
	bad.Targets = append([]SavedFault{bad.Targets[0]}, bad.Targets...)
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("malformed vector accepted")
	}
}

// Checkpoints survive a JSON round trip through the atomic journal intact.
func TestCheckpointJournalRoundTrip(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	full := Run(c, faults, deterministicConfig(5))

	var mid *Checkpoint
	n := 0
	cfg := deterministicConfig(5)
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(ck *Checkpoint) {
		n++
		if n == 6 {
			mid = ck
		}
	}
	Run(c, faults, cfg)
	if mid == nil {
		t.Skip("run too short to capture a mid-run snapshot")
	}

	path := t.TempDir() + "/ck.json"
	if err := runctl.SaveJSON(path, mid); err != nil {
		t.Fatal(err)
	}
	var loaded Checkpoint
	if err := runctl.LoadJSON(path, &loaded); err != nil {
		t.Fatal(err)
	}
	res, err := Resume(context.Background(), c, faults, deterministicConfig(5), &loaded)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, res)
}

// The alternating hybrid honors cancellation too.
func TestAlternatingCancelled(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunAlternatingCtx(ctx, c, faults, AlternatingConfig{Seed: 1})
	if !res.Interrupted {
		t.Fatal("cancelled alternating run not marked Interrupted")
	}
	if res.Detected != 0 {
		t.Fatalf("cancelled run detected %d faults", res.Detected)
	}
}
