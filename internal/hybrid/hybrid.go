// Package hybrid implements the paper's test-generation architecture: the
// GA-HITEC hybrid (deterministic fault excitation and propagation, genetic
// state justification in the first passes, deterministic state justification
// afterwards) and the HITEC-style purely deterministic baseline, both driven
// through a multi-pass schedule over the fault list with per-fault time
// limits (paper Table I).
//
// Every candidate test is confirmed by the independent fault simulator
// before it is counted, and detected faults — targeted or incidental — are
// dropped from the fault list.
package hybrid

import (
	"time"

	"gahitec/internal/audit"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/ga"
	"gahitec/internal/logic"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// Method selects the state-justification approach of a pass.
type Method uint8

const (
	// MethodGA justifies the required state with the genetic algorithm,
	// starting from the good machine's current state (GA-HITEC passes 1-2).
	MethodGA Method = iota
	// MethodDet justifies deterministically by reverse time processing from
	// the all-unknown state (GA-HITEC pass 3+, all HITEC passes).
	MethodDet
)

func (m Method) String() string {
	if m == MethodGA {
		return "GA"
	}
	return "deterministic"
}

// Pass configures one pass over the fault list.
type Pass struct {
	Method       Method
	TimePerFault time.Duration

	// GA parameters (MethodGA only).
	Population  int
	Generations int
	SeqLen      int

	// Deterministic search budget for this pass (excitation/propagation
	// always; justification too for MethodDet).
	MaxBacktracks int

	// JustifyAttempts is how many alternative required states (propagation
	// solutions) are tried when justification fails. At least 1.
	JustifyAttempts int
}

// Config configures a full run.
type Config struct {
	Passes []Pass

	// Seed drives every stochastic component (GA populations, X-fill).
	Seed int64

	// RunID is the run correlation ID (obs.NewRunID): stamped on every
	// trace event, recorded in checkpoint journals (so a resumed run keeps
	// its identity) and in crash-repro bundles. Purely telemetry — it never
	// influences the search or any deterministic output. Empty disables
	// stamping; Resume adopts the journal's ID when this is empty.
	RunID string

	// MaxFrames bounds forward propagation and backward justification
	// windows (0: 4x sequential depth).
	MaxFrames int

	// GA knobs for the ablation benchmarks; zero values are the paper's.
	WeightGood  float64
	Selection   ga.Selection
	Crossover   ga.Crossover
	Overlapping bool

	// FaultFreeJustify makes deterministic passes justify only the
	// good-machine state (the weaker fallback); by default deterministic
	// justification is fault-aware (nine-valued, both machines), as in
	// HITEC proper. Exposed for the ablation benchmarks.
	FaultFreeJustify bool

	// Workers sizes the parallel fault pipeline: per-fault searches for up
	// to Workers faults run concurrently and speculatively, with outcomes
	// committed strictly in serial fault order, so the test set, report and
	// checkpoint journal are bit-identical to a serial run with the same
	// seed (per-fault wall-clock limits permitting, exactly as with
	// Resume). 0 or 1 runs the classic serial loop. The worker count is
	// deliberately outside the reproducibility contract: it may differ
	// between runs, change mid-run under the scheduler, or change across a
	// resume without affecting any output. With a Governor installed,
	// memory pressure throttles the worker count before shedding per-fault
	// search effort (see supervise.Scheduler).
	Workers int

	// PreprocessUntestable runs a cheap untestability screen over the fault
	// list before the first pass (the speedup suggested in the paper's
	// conclusions), removing provably untestable faults so the GA passes do
	// not waste their per-fault budget on them.
	PreprocessUntestable bool

	// Continue, if non-nil, is consulted after each pass with the
	// cumulative statistics; returning false stops the run. This is the
	// paper's "after each pass, the user is prompted as to whether to
	// continue" hook (cmd/atpg -interactive wires it to stdin).
	Continue func(PassStats) bool

	// Checkpoint, if non-nil, receives a resumable snapshot of the run
	// every CheckpointEvery fault boundaries, at every pass boundary, and
	// when the run is interrupted. Snapshots are only ever taken between
	// faults, so resuming one replays the interrupted fault from scratch
	// and the resumed run stays bit-identical to an uninterrupted one
	// (same seed, per-fault time limits permitting). The callback
	// typically persists the snapshot with runctl.SaveJSON.
	Checkpoint func(*Checkpoint)

	// CheckpointEvery is the fault-boundary cadence of the Checkpoint
	// callback (default 16 when Checkpoint is set).
	CheckpointEvery int

	// Hooks, if non-nil, is the runctl fault-injection harness, threaded
	// into the deterministic engine, the GA justifier, and the bit-parallel
	// fault simulator; test machinery.
	Hooks *runctl.Hooks

	// Obs, if non-nil, is the run-telemetry recorder, threaded exactly like
	// Hooks: per-fault spans are emitted at the same boundaries where the
	// Phases counters increment (excitation/propagation, GA and
	// deterministic justification, verification, fault-sim grading, audit
	// replay, quarantine/retry), and its metrics snapshot rides in every
	// checkpoint so a resumed run's telemetry equals an uninterrupted
	// run's. A nil recorder costs one pointer check per site.
	Obs *obs.Recorder

	// Progress, if non-nil, is called at every fault boundary with a live
	// snapshot of the run (cmd/atpg -progress wires it to a rate-limited
	// stderr line). The callback runs on the run's goroutine; keep it cheap.
	Progress func(Progress)

	// Audit independently re-verifies every detection claim at the end of
	// the run: the final test set is replayed on the serial reference
	// simulator (internal/audit), one claimed fault at a time. Claims the
	// reference cannot reproduce are demoted, recorded in Result.Audit, and
	// quarantined for retry.
	Audit bool

	// Retry configures the end-of-run quarantine retry loop: faults that
	// panicked, exhausted their per-fault budget, or failed the audit are
	// re-targeted with budgets escalated per attempt (bounded by
	// Retry.MaxAttempts; bases default to the schedule's last pass). The
	// zero value disables retries.
	Retry runctl.Escalation

	// Watchdog supervises every targeted-fault search: the search runs on a
	// side goroutine fed by progress heartbeats (every engine budget poll and
	// every GA generation beats the pulse), and a search that exceeds the
	// wall-clock ceiling or goes heartbeat-silent is hard-preempted — its
	// context cancelled and, if it still does not return, its goroutine
	// abandoned — so one stuck fault cannot stall the whole run. Preempted
	// faults are counted in Phases.Preempted and quarantined for retry. The
	// zero value disables supervision (searches run inline, as before).
	Watchdog supervise.Watchdog

	// Governor, if non-nil, adapts per-fault search effort to memory
	// pressure: it is sampled at every fault boundary (never from a timer,
	// so a forced pressure schedule reproduces exactly), and its level
	// shrinks the pass's GA population, generations, sequence length and
	// backtrack allowance toward the schedule's earlier-pass scale. Every
	// level change is recorded in Result.Degradations.
	Governor *supervise.Governor

	// Bundle, if non-nil, receives every crash-repro bundle captured during
	// the run — on a recovered panic, a watchdog preemption, budget
	// exhaustion, or an audit demotion. Bundles are self-contained and
	// deterministic; cmd/atpg -repro replays one in isolation. The callback
	// typically persists the bundle with its FileName.
	Bundle func(*supervise.Bundle)

	// InjectSpec is the raw fault-injection spec behind Hooks (as given to
	// runctl.ParseInjectSpec); it is recorded — normalized to fire on every
	// call — in captured bundles so a replay re-arms the same injected
	// failure. Informational; Hooks alone drives the injection.
	InjectSpec string
}

// GAHITECConfig builds the paper's Table I schedule. x is the base sequence
// length (the paper uses a multiple of the sequential depth) and scale
// compresses the per-fault wall-clock limits (the paper's SPARCstation
// seconds become scale-seconds here: scale=0.03 turns 1s/10s/100s into
// 30ms/300ms/3s).
func GAHITECConfig(x int, scale float64) Config {
	if x < 2 {
		x = 2
	}
	lim := func(s float64) time.Duration { return time.Duration(s * scale * float64(time.Second)) }
	return Config{
		Passes: []Pass{
			{Method: MethodGA, TimePerFault: lim(1), Population: 64, Generations: 4, SeqLen: x / 2, MaxBacktracks: 1000, JustifyAttempts: 2},
			{Method: MethodGA, TimePerFault: lim(10), Population: 128, Generations: 8, SeqLen: x, MaxBacktracks: 4000, JustifyAttempts: 3},
			{Method: MethodDet, TimePerFault: lim(100), MaxBacktracks: 20000, JustifyAttempts: 3},
		},
	}
}

// HITECConfig builds the baseline schedule: deterministic justification in
// every pass, time limits 1s, 10s, 100s (scaled) and backtrack limits
// multiplied by ten each pass, as the paper describes.
func HITECConfig(passes int, scale float64) Config {
	if passes <= 0 {
		passes = 3
	}
	cfg := Config{}
	t := 1.0
	bt := 1000
	for i := 0; i < passes; i++ {
		cfg.Passes = append(cfg.Passes, Pass{
			Method:          MethodDet,
			TimePerFault:    time.Duration(t * scale * float64(time.Second)),
			MaxBacktracks:   bt,
			JustifyAttempts: 3,
		})
		t *= 10
		bt *= 10
	}
	return cfg
}

// Progress is a live snapshot of a run at a fault boundary.
type Progress struct {
	Pass        int // 1-based pass number (schedule passes, then retry)
	PassCount   int // scheduled passes
	FaultIndex  int // faults targeted so far within this pass
	PassTargets int // faults in this pass's target snapshot
	Detected    int // faults detected so far (cumulative)
	TotalFaults int
	Vectors     int           // vectors generated so far
	Elapsed     time.Duration // cumulative run wall clock
	// ETA extrapolates the remainder of this pass from the per-fault pace
	// observed since the pass (or the resume point) began. Zero until one
	// fault has completed.
	ETA time.Duration
}

// Coverage returns detected / total.
func (p Progress) Coverage() float64 {
	if p.TotalFaults == 0 {
		return 0
	}
	return float64(p.Detected) / float64(p.TotalFaults)
}

// PassStats reports cumulative results at the end of a pass, matching the
// paper's Det / Vec / Time / Unt columns.
type PassStats struct {
	Pass       int
	Detected   int           // cumulative faults detected
	Vectors    int           // cumulative test vectors generated
	Elapsed    time.Duration // cumulative wall-clock time
	Untestable int           // cumulative untestable faults identified
	Aborted    int           // faults still undecided after this pass
}

// PhaseStats counts the Fig. 1 flow transitions across a run.
type PhaseStats struct {
	Targeted          int // faults targeted by the deterministic engine
	ExciteProp        int // successful excitation+propagation attempts
	GAJustifyCalls    int
	GAJustifyFound    int
	DetJustifyCalls   int
	DetJustifyFound   int
	PropBacktracks    int // alternative propagation solutions requested
	VerifyFailures    int // candidate tests rejected by the fault simulator
	IncidentalDetects int // faults dropped without being targeted
	Preprocessed      int // untestables filtered by the preprocessing screen
	Panics            int // faults aborted by a recovered engine panic
	Preempted         int // faults aborted by a watchdog preemption
}

// add accumulates the per-attempt counter deltas of one supervised search
// into the run totals. Only the counters the search body increments are
// carried through d; driver-side counters (Targeted, IncidentalDetects,
// Preprocessed, Panics, Preempted) stay zero in deltas.
func (p *PhaseStats) add(d PhaseStats) {
	p.Targeted += d.Targeted
	p.ExciteProp += d.ExciteProp
	p.GAJustifyCalls += d.GAJustifyCalls
	p.GAJustifyFound += d.GAJustifyFound
	p.DetJustifyCalls += d.DetJustifyCalls
	p.DetJustifyFound += d.DetJustifyFound
	p.PropBacktracks += d.PropBacktracks
	p.VerifyFailures += d.VerifyFailures
	p.IncidentalDetects += d.IncidentalDetects
	p.Preprocessed += d.Preprocessed
	p.Panics += d.Panics
	p.Preempted += d.Preempted
}

// Result is the outcome of a full run.
type Result struct {
	Circuit     string
	TotalFaults int
	Passes      []PassStats
	Phases      PhaseStats
	TestSet     [][]logic.Vector // one sequence per accepted test
	Targets     []fault.Fault    // per TestSet entry: the fault it targeted
	Untestable  []fault.Fault

	// Interrupted is set when the run's context was cancelled (or its
	// deadline passed) before the schedule completed; the Result then
	// holds the partial state, and the last Checkpoint snapshot can
	// resume it.
	Interrupted bool

	// FirstPanic holds the message and stack of the first engine panic
	// recovered during the run (the fault it hit is counted in
	// Phases.Panics and left undecided rather than killing the run).
	FirstPanic string

	// Detections is the bit-parallel simulator's full detection log (fault
	// plus claimed detecting vector) — the claims the audit verifies. Nil
	// when the run was interrupted before the schedule completed.
	Detections []faultsim.Detection

	// Audit is the independent verification report (Config.Audit). When the
	// retry phase re-targeted faults, this is the post-retry re-audit. Nil
	// when auditing was disabled or the run was interrupted first.
	Audit *audit.Report

	// Quarantine lists every fault quarantined during the run with its
	// final disposition; Retry summarizes the retry phase.
	Quarantine []Quarantined
	Retry      RetryStats

	// Degradations is the governor's decision log: every load-shedding
	// level change, in sampling order. Two runs with the same seed and the
	// same pressure schedule produce identical logs.
	Degradations []supervise.Decision
}

// FaultCoverage returns detected / total.
func (r *Result) FaultCoverage() float64 {
	if r.TotalFaults == 0 || len(r.Passes) == 0 {
		return 0
	}
	last := r.Passes[len(r.Passes)-1]
	return float64(last.Detected) / float64(r.TotalFaults)
}

// Vectors returns the flattened test set.
func (r *Result) Vectors() []logic.Vector {
	var out []logic.Vector
	for _, seq := range r.TestSet {
		out = append(out, seq...)
	}
	return out
}
