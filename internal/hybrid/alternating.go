package hybrid

import (
	"context"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/simgen"

	"math/rand"
)

// AlternatingConfig configures the Saab-style hybrid of paper reference
// [19]: "switches from simulation-based to deterministic test generation
// when a fixed number of test vectors are generated without improving the
// fault coverage; simulation-based test generation resumes after a test
// sequence is obtained from the deterministic procedure." It is implemented
// here as the comparison point the paper contrasts GA-HITEC against.
type AlternatingConfig struct {
	Sim simgen.Options

	// StallRounds simulation rounds without improvement trigger a
	// deterministic interlude (default 3).
	StallRounds int
	// DetTimePerFault bounds each deterministic interlude target.
	DetTimePerFault time.Duration
	// DetBacktracks bounds each deterministic search (default 10000).
	DetBacktracks int
	// MaxInterludes bounds the number of deterministic interludes
	// (default 50).
	MaxInterludes int
	// MaxFrames as in Config.
	MaxFrames int

	Seed int64
}

func (a *AlternatingConfig) setDefaults() {
	if a.StallRounds <= 0 {
		a.StallRounds = 3
	}
	if a.DetTimePerFault <= 0 {
		a.DetTimePerFault = 100 * time.Millisecond
	}
	if a.DetBacktracks <= 0 {
		a.DetBacktracks = 10000
	}
	if a.MaxInterludes <= 0 {
		a.MaxInterludes = 50
	}
}

// AlternatingResult reports a RunAlternating outcome.
type AlternatingResult struct {
	Detected   int
	Vectors    int
	Untestable int
	SimRounds  int
	Interludes int
	Elapsed    time.Duration
	TestSet    [][]logic.Vector

	// Interrupted is set when the run's context was cancelled before the
	// generator terminated on its own.
	Interrupted bool
}

// RunAlternating executes the alternating simulation/deterministic hybrid.
func RunAlternating(c *netlist.Circuit, faults []fault.Fault, cfg AlternatingConfig) *AlternatingResult {
	return RunAlternatingCtx(context.Background(), c, faults, cfg)
}

// RunAlternatingCtx is RunAlternating under a context: cancellation (or the
// context deadline) stops the generator at the next round boundary, or
// inside a deterministic interlude via the engine budget.
func RunAlternatingCtx(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg AlternatingConfig) *AlternatingResult {
	cfg.setDefaults()
	start := time.Now()
	cfg.Sim.Seed = cfg.Seed
	session := simgen.NewSession(c, faults, cfg.Sim)
	engine := atpg.NewEngine(c)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	res := &AlternatingResult{}
	untestable := make(map[fault.Fault]bool)
	stall := 0
	nextTarget := 0

	for {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		seq, _ := session.TryRoundCtx(ctx)
		res.SimRounds++
		if seq != nil {
			res.TestSet = append(res.TestSet, seq)
			stall = 0
			continue
		}
		stall++
		if stall < cfg.StallRounds {
			continue
		}
		// Deterministic interlude: target the next undetected fault with a
		// full generate + justify + verify attempt.
		if res.Interludes >= cfg.MaxInterludes {
			break
		}
		res.Interludes++
		stall = 0
		remaining := session.Grader().Remaining()
		if len(remaining) == 0 {
			break
		}
		produced := false
		for tries := 0; tries < len(remaining); tries++ {
			f := remaining[(nextTarget+tries)%len(remaining)]
			if untestable[f] {
				continue
			}
			seq, status := deterministicTest(ctx, c, engine, rng, f, cfg, session.Grader().GoodState())
			if status == atpg.Untestable {
				untestable[f] = true
				res.Untestable++
				continue
			}
			if seq == nil {
				continue
			}
			nextTarget = (nextTarget + tries + 1) % len(remaining)
			session.Apply(seq)
			res.TestSet = append(res.TestSet, seq)
			produced = true
			break
		}
		if !produced {
			break // deterministic interlude also dry: terminate
		}
	}
	res.Detected = session.Grader().NumDetected()
	res.Vectors = session.Grader().NumVectors()
	res.Elapsed = time.Since(start)
	return res
}

// deterministicTest produces a verified test for one fault, or nil.
func deterministicTest(ctx context.Context, c *netlist.Circuit, e *atpg.Engine, rng *rand.Rand, f fault.Fault, cfg AlternatingConfig, goodState logic.Vector) ([]logic.Vector, atpg.Status) {
	lim := atpg.Limits{
		MaxFrames:     cfg.MaxFrames,
		MaxBacktracks: cfg.DetBacktracks,
		Deadline:      time.Now().Add(cfg.DetTimePerFault),
	}
	gen := e.GenerateCtx(ctx, f, lim)
	if gen.Status != atpg.Success {
		return nil, gen.Status
	}
	j := e.JustifyDualCtx(ctx, f, gen.RequiredGood, gen.RequiredFaulty, lim)
	if j.Status != atpg.Success {
		return nil, j.Status
	}
	seq := make([]logic.Vector, 0, len(j.Vectors)+len(gen.Vectors))
	for _, v := range append(append([]logic.Vector{}, j.Vectors...), gen.Vectors...) {
		w := v.Clone()
		for k := range w {
			if w[k] == logic.X {
				w[k] = logic.FromBit(uint64(rng.Intn(2)))
			}
		}
		seq = append(seq, w)
	}
	if ok, _ := faultsim.DetectsFrom(c, f, goodState, nil, seq); !ok {
		return nil, atpg.Aborted
	}
	return seq, atpg.Success
}
