package hybrid

import (
	"context"
	"strings"
	"testing"
	"time"

	"gahitec/internal/bench"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/runctl"
)

// A pass starved of backtracks leaves most faults undecided; the retry phase
// must re-target them with escalated budgets and recover detections the pass
// could not afford.
func TestBudgetQuarantineRetriedWithEscalation(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	starved := Config{
		Passes: []Pass{{Method: MethodDet, TimePerFault: time.Hour, MaxBacktracks: 1, JustifyAttempts: 1}},
		Seed:   1,
	}
	base := Run(c, faults, starved)
	baseDet := base.Passes[len(base.Passes)-1].Detected
	if base.Retry.Quarantined == 0 {
		t.Fatal("starved pass quarantined nothing; test is vacuous")
	}
	if base.Retry.Retried != 0 {
		t.Fatal("retries ran with a zero-valued Escalation")
	}

	cfg := starved
	cfg.Retry = runctl.Escalation{MaxAttempts: 3, BaseBacktracks: 1000}
	res := Run(c, faults, cfg)

	if res.Retry.Quarantined == 0 || res.Retry.Retried == 0 {
		t.Fatalf("retry phase did not run: %+v", res.Retry)
	}
	if res.Retry.Recovered == 0 {
		t.Fatalf("escalated retries recovered nothing: %+v", res.Retry)
	}
	// The first retry already runs at BaseBacktracks*2; the recorded final
	// escalation must reflect at least that.
	if res.Retry.EscalatedBacktracks < 2000 {
		t.Fatalf("EscalatedBacktracks = %d, want >= 2000", res.Retry.EscalatedBacktracks)
	}
	last := res.Passes[len(res.Passes)-1]
	if last.Pass != len(cfg.Passes)+1 {
		t.Fatalf("retry phase row missing: last pass row is %d", last.Pass)
	}
	if last.Detected <= baseDet {
		t.Fatalf("retries detected nothing beyond the starved run: %d vs %d", last.Detected, baseDet)
	}
	// Accounting still closes after the retry phase.
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatalf("accounting broken after retries: %+v vs %d", last, res.TotalFaults)
	}
	for _, q := range res.Quarantine {
		if q.Resolved && q.Reason == ReasonBudget && q.Attempts > 0 {
			return // at least one fault demonstrably recovered by a retry
		}
	}
	t.Fatalf("no quarantine entry shows a budget fault recovered by retry: %+v", res.Quarantine)
}

// A fault that panics the engine in every attempt stays quarantined with
// ReasonPanic and is reported exhausted once the retry budget runs out.
func TestPanicQuarantineExhausts(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	hooks := runctl.NewHooks()
	hooks.Arm("generate", 0, runctl.ActPanic) // call 0: fire on every call
	cfg := Config{
		Passes: []Pass{{Method: MethodDet, TimePerFault: time.Hour, MaxBacktracks: 4000, JustifyAttempts: 1}},
		Seed:   1,
		Hooks:  hooks,
		Retry:  runctl.Escalation{MaxAttempts: 2},
	}
	res := Run(c, faults, cfg)
	if res.Retry.Quarantined != res.TotalFaults {
		t.Fatalf("quarantined %d of %d always-panicking faults", res.Retry.Quarantined, res.TotalFaults)
	}
	if res.Retry.Recovered != 0 || res.Retry.Exhausted != res.TotalFaults {
		t.Fatalf("unexpected retry outcome: %+v", res.Retry)
	}
	for _, q := range res.Quarantine {
		if q.Reason != ReasonPanic || q.Resolved || q.Attempts != 2 {
			t.Fatalf("bad quarantine entry: %+v", q)
		}
	}
}

// End-to-end trust-but-verify: a corrupted packed word fabricates one
// detection, the audit demotes exactly that fault, the retry phase
// re-targets it, and the post-retry audit confirms the recovery with a real
// (serially confirmed) test.
func TestAuditDemotionQuarantinedAndRecovered(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	mk := func(call int, retry runctl.Escalation) *Result {
		hooks := runctl.NewHooks()
		hooks.Arm(faultsim.SiteWord, call, runctl.ActCorrupt)
		return Run(c, faults, Config{
			Passes: []Pass{{Method: MethodDet, TimePerFault: time.Hour, MaxBacktracks: 4000, JustifyAttempts: 3}},
			Seed:   1,
			Hooks:  hooks,
			Audit:  true,
			Retry:  retry,
		})
	}

	// Find an injection point whose corruption fabricates a detection the
	// audit demotes (some calls land where the good PO is unknown or on a
	// fault that is genuinely detected later; those corrupt nothing or only
	// shift a vector index).
	var demotedRun *Result
	var call int
	for k := 1; k <= 40 && demotedRun == nil; k++ {
		if res := mk(k, runctl.Escalation{}); res.Audit != nil && res.Audit.Unverified == 1 {
			demotedRun, call = res, k
		}
	}
	if demotedRun == nil {
		t.Fatal("no injection point produced a demotable fabricated detection")
	}

	demoted := demotedRun.Audit.Demoted()
	if len(demoted) != 1 {
		t.Fatalf("demoted %d faults, want exactly 1", len(demoted))
	}
	found := false
	for _, q := range demotedRun.Quarantine {
		if q.Fault == demoted[0] {
			found = true
			if q.Reason != ReasonAudit {
				t.Fatalf("demoted fault quarantined as %s, want audit", q.Reason)
			}
			if q.Resolved {
				t.Fatal("demoted fault marked resolved with retries disabled")
			}
		}
	}
	if !found {
		t.Fatalf("demoted fault %s not quarantined", demoted[0].String(c))
	}

	// Same corruption, retries on: the demoted fault must be re-targeted and
	// the final (post-retry) audit must verify its detection via the new
	// serially confirmed test.
	res := mk(call, runctl.Escalation{MaxAttempts: 2})
	if res.Audit == nil {
		t.Fatal("no audit report")
	}
	if res.Retry.Retried == 0 {
		t.Fatalf("audit demotion not retried: %+v", res.Retry)
	}
	for _, q := range res.Quarantine {
		if q.Reason != ReasonAudit {
			continue
		}
		if q.Attempts == 0 {
			t.Fatalf("audit-quarantined fault never retried: %+v", q)
		}
		if q.Resolved && res.Audit.Unverified != 0 {
			t.Fatalf("fault marked recovered but final audit still demotes %d claims", res.Audit.Unverified)
		}
	}
}

// A journal written for one revision of a netlist must not resume against a
// structurally different one, even under the same circuit name.
func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var last *Checkpoint
	cfg := deterministicConfig(1)
	cfg.Checkpoint = func(ck *Checkpoint) { last = ck }
	Run(c, faults, cfg)
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}

	// The same netlist with one gate changed: same name, same inputs, a
	// different structure.
	changed := strings.Replace(s27, "G16 = OR(G3, G8)", "G16 = AND(G3, G8)", 1)
	c2, err := bench.ParseString(changed, "s27")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), c2, fault.Collapse(c2), deterministicConfig(1), last); err == nil {
		t.Error("journal resumed against a structurally different circuit")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("rejection does not mention the fingerprint: %v", err)
	}

	// A tampered fingerprint is refused outright.
	bad := *last
	bad.Fingerprint = "0000000000000000"
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("tampered fingerprint accepted")
	}

	// An unknown quarantine reason is refused, not silently dropped.
	bad = *last
	bad.Quarantine = append([]SavedQuarantine(nil), SavedQuarantine{Fault: SavedFault{Node: 0, Pin: -1, Stuck: "0"}, Reason: "vibes"})
	if _, err := Resume(context.Background(), c, faults, deterministicConfig(1), &bad); err == nil {
		t.Error("unknown quarantine reason accepted")
	}
}
