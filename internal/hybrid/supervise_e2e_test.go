package hybrid

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gahitec/internal/fault"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// armed parses an injection spec into hooks and wires both the hooks and the
// spec string (for bundle capture) into the config.
func armed(t *testing.T, cfg *Config, spec string) {
	t.Helper()
	hooks, err := runctl.ParseInjectSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hooks = hooks
	cfg.InjectSpec = spec
}

// A search that goes heartbeat-silent (an injected multi-second sleep inside
// the engine) is hard-preempted by the stall watchdog; the run completes the
// remaining faults and records the preemption in the phase counters, the
// quarantine and a crash-repro bundle.
func TestWatchdogPreemptsStuckSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock watchdog thresholds are unreliable under -short/-race slowdown")
	}
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	cfg := deterministicConfig(1)
	armed(t, &cfg, "generate:3:sleep=5s")
	cfg.Watchdog = supervise.Watchdog{Stall: 100 * time.Millisecond}
	var bundles []*supervise.Bundle
	cfg.Bundle = func(b *supervise.Bundle) { bundles = append(bundles, b) }

	start := time.Now()
	res := Run(c, faults, cfg)
	if el := time.Since(start); el > 4*time.Second {
		t.Errorf("run waited out the injected sleep (%s) instead of preempting", el)
	}
	if res.Interrupted {
		t.Fatal("preemption interrupted the run instead of one fault")
	}
	if len(res.Passes) != len(cfg.Passes) {
		t.Fatalf("run stopped after %d of %d passes", len(res.Passes), len(cfg.Passes))
	}
	if res.Phases.Preempted != 1 {
		t.Fatalf("Phases.Preempted = %d, want 1", res.Phases.Preempted)
	}
	// Accounting still closes around the preempted fault.
	last := res.Passes[len(res.Passes)-1]
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatalf("accounting broken after preemption: %+v vs %d", last, res.TotalFaults)
	}
	var pre *Quarantined
	for i := range res.Quarantine {
		if res.Quarantine[i].Reason == ReasonPreempt {
			pre = &res.Quarantine[i]
		}
	}
	if pre == nil {
		t.Fatalf("no preempt-reason quarantine entry: %+v", res.Quarantine)
	}
	if pre.Bundle == nil || pre.Bundle.Kind != supervise.KindPreempt {
		t.Fatalf("preempted fault carries no preempt bundle: %+v", pre.Bundle)
	}
	if pre.Bundle.Outcome != "preempt_stall" {
		t.Fatalf("bundle outcome %q, want preempt_stall", pre.Bundle.Outcome)
	}
	sunk := false
	for _, b := range bundles {
		sunk = sunk || b.Kind == supervise.KindPreempt
	}
	if !sunk {
		t.Fatalf("bundle sink did not receive the preempt bundle (%d others did arrive)", len(bundles))
	}

	// The bundle replays: same stall watchdog, normalized sleep injection,
	// same preemption.
	rep, err := Repro(context.Background(), c, pre.Bundle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match || rep.Outcome != "preempt_stall" {
		t.Fatalf("preempt bundle did not reproduce: %+v", rep)
	}
}

// The ceiling watchdog preempts a search that keeps its heartbeat but runs
// past the wall-clock ceiling.
func TestWatchdogCeilingPreemptsLongSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock watchdog thresholds are unreliable under -short/-race slowdown")
	}
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	cfg := deterministicConfig(1)
	armed(t, &cfg, "generate:3:sleep=5s")
	cfg.Watchdog = supervise.Watchdog{Ceiling: 150 * time.Millisecond}
	res := Run(c, faults, cfg)
	if res.Phases.Preempted != 1 {
		t.Fatalf("Phases.Preempted = %d, want 1", res.Phases.Preempted)
	}
	var pre *Quarantined
	for i := range res.Quarantine {
		if res.Quarantine[i].Reason == ReasonPreempt {
			pre = &res.Quarantine[i]
		}
	}
	if pre == nil || pre.Bundle == nil || pre.Bundle.Outcome != "preempt_ceiling" {
		t.Fatalf("expected a preempt_ceiling bundle, got %+v", pre)
	}
}

// forcedGovernor returns a governor whose probe walks a scripted pressure
// schedule: normal for the first few samples, then soft, then hard, then
// relieved. The schedule depends only on the sample count, so two identical
// runs see identical pressure.
func forcedGovernor() *supervise.Governor {
	n := 0
	return &supervise.Governor{
		SoftBytes: 1 << 20,
		HardBytes: 2 << 20,
		Probe: func() uint64 {
			n++
			switch {
			case n <= 4:
				return 0
			case n <= 10:
				return 3 << 19 // soft
			case n <= 16:
				return 3 << 20 // hard
			default:
				return 0 // pressure relieved
			}
		},
	}
}

// Degradation under (forced) memory pressure is deterministic: two runs with
// the same seed and the same pressure schedule produce bit-identical test
// sets and identical decision logs.
func TestGovernorDegradationDeterministic(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	once := func() *Result {
		cfg := deterministicConfig(1)
		cfg.Governor = forcedGovernor()
		return Run(c, faults, cfg)
	}
	a, b := once(), once()
	sameResults(t, a, b)
	if len(a.Degradations) == 0 {
		t.Fatal("forced pressure schedule produced no degradation decisions")
	}
	if !reflect.DeepEqual(a.Degradations, b.Degradations) {
		t.Fatalf("decision logs diverged:\n%v\n%v", a.Degradations, b.Degradations)
	}
	// The log walks the forced schedule: up to soft, up to hard, back down.
	levels := []string{supervise.LevelNormal.String()}
	for _, d := range a.Degradations {
		if d.From != levels[len(levels)-1] {
			t.Fatalf("decision %v does not chain from %v", d, levels[len(levels)-1])
		}
		levels = append(levels, d.To)
	}
	want := []string{"normal", "soft", "hard", "normal"}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("level walk %v, want %v", levels, want)
	}
}

// An injected engine panic yields a crash-repro bundle whose replay panics at
// the same injection site.
func TestPanicBundleReproduces(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	cfg := deterministicConfig(1)
	armed(t, &cfg, "generate:3:panic")
	var bundles []*supervise.Bundle
	cfg.Bundle = func(b *supervise.Bundle) { bundles = append(bundles, b) }
	res := Run(c, faults, cfg)
	if res.Phases.Panics != 1 {
		t.Fatalf("Phases.Panics = %d, want 1", res.Phases.Panics)
	}
	var pb *supervise.Bundle
	for _, b := range bundles {
		if b.Kind == supervise.KindPanic {
			pb = b
		}
	}
	if pb == nil {
		t.Fatalf("no panic bundle captured: %+v", bundles)
	}
	if pb.PanicSite != "generate" || pb.Outcome != "panic" {
		t.Fatalf("panic bundle site %q outcome %q", pb.PanicSite, pb.Outcome)
	}

	// Round-trip through the serialized form, exactly like -repro does.
	path := t.TempDir() + "/bundle.json"
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := supervise.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Repro(context.Background(), c, loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match || rep.Outcome != "panic" || rep.PanicSite != "generate" {
		t.Fatalf("panic bundle did not reproduce: %+v", rep)
	}

	// Budget bundles captured in the same run must NOT inherit the panic
	// rule: their replay re-runs a natural search and reproduces the budget
	// exhaustion, not somebody else's injected panic.
	for _, b := range bundles {
		if b.Kind != supervise.KindBudget {
			continue
		}
		if b.InjectSpec != "" {
			t.Fatalf("budget bundle inherited foreign injections: %q", b.InjectSpec)
		}
		rep, err := Repro(context.Background(), c, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Match {
			t.Fatalf("budget bundle from a panic-injected run did not reproduce: %+v", rep)
		}
		break
	}
}

// A budget-exhausted fault (injected expiry) yields a bundle whose replay is
// undecided again.
func TestBudgetBundleReproduces(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	cfg := deterministicConfig(1)
	armed(t, &cfg, "generate:*:expire")
	var bundles []*supervise.Bundle
	cfg.Bundle = func(b *supervise.Bundle) { bundles = append(bundles, b) }
	res := Run(c, faults, cfg)
	if len(bundles) == 0 {
		t.Fatal("no budget bundles captured")
	}
	if res.Phases.ExciteProp != 0 {
		t.Fatal("expired searches still made progress")
	}
	b := bundles[0]
	if b.Kind != supervise.KindBudget || b.Outcome != "undecided" {
		t.Fatalf("bundle kind %q outcome %q", b.Kind, b.Outcome)
	}
	rep, err := Repro(context.Background(), c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("budget bundle did not reproduce: %+v", rep)
	}
}

// An audit miscompare (fabricated by corrupting one packed simulator word)
// yields a data-driven bundle whose replay demotes the same claim on the
// serial reference.
func TestAuditMiscompareBundleReproduces(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	// Find an injection call whose corruption fabricates a demotable claim
	// (calls landing where the good PO is unknown corrupt nothing).
	var mb *supervise.Bundle
	for k := 1; k <= 8 && mb == nil; k++ {
		cfg := deterministicConfig(1)
		cfg.Audit = true
		armed(t, &cfg, "faultsim.word:"+string(rune('0'+k))+":corrupt")
		cfg.Bundle = func(b *supervise.Bundle) {
			if b.Kind == supervise.KindAuditMiscompare {
				mb = b
			}
		}
		Run(c, faults, cfg)
	}
	if mb == nil {
		t.Fatal("no injection call produced a demotable fabricated detection")
	}
	if mb.Outcome != "miscompare" || len(mb.TestSet) == 0 {
		t.Fatalf("miscompare bundle incomplete: outcome %q, %d sequences", mb.Outcome, len(mb.TestSet))
	}
	rep, err := Repro(context.Background(), c, mb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match || rep.Outcome != "miscompare" {
		t.Fatalf("miscompare bundle did not reproduce: %+v", rep)
	}
}

// Version-4 checkpoints carry quarantine bundles and the degradation log
// through a JSON round-trip, and Validate accepts them.
func TestCheckpointCarriesBundlesAndDegradations(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	cfg := deterministicConfig(1)
	armed(t, &cfg, "generate:*:expire")
	cfg.Governor = forcedGovernor()
	cfg.CheckpointEvery = 1
	var last *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) { last = ck }
	Run(c, faults, cfg)
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}
	if last.Version != CheckpointVersion {
		t.Fatalf("checkpoint version %d, want %d", last.Version, CheckpointVersion)
	}
	withBundle := 0
	for _, sq := range last.Quarantine {
		if sq.Bundle != nil {
			withBundle++
		}
	}
	if withBundle == 0 {
		t.Fatalf("no quarantine entry carries its bundle: %+v", last.Quarantine)
	}
	if len(last.Degradations) == 0 {
		t.Fatal("checkpoint lost the degradation log")
	}

	path := t.TempDir() + "/ck.json"
	if err := runctl.SaveJSON(path, last); err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := runctl.LoadJSON(path, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(c, cfg, len(faults)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Degradations, last.Degradations) {
		t.Fatal("degradation log did not round-trip")
	}
}

// Quarantine retries replay from the bundle's forked sub-seed, so a run's
// retry phase is deterministic given the quarantine list alone.
func TestRetryFromBundleDeterministic(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	once := func() *Result {
		cfg := deterministicConfig(1)
		// Expire the first two searches so something lands in quarantine,
		// then let escalated retries resolve it.
		armed(t, &cfg, "generate:1:expire,generate:2:expire")
		cfg.Retry = runctl.Escalation{MaxAttempts: 2}
		return Run(c, faults, cfg)
	}
	a, b := once(), once()
	sameResults(t, a, b)
	if a.Retry.Quarantined == 0 {
		t.Fatal("nothing was quarantined; the retry path was not exercised")
	}
	if a.Retry.Retried != b.Retry.Retried || a.Retry.Recovered != b.Retry.Recovered {
		t.Fatalf("retry stats diverged: %+v vs %+v", a.Retry, b.Retry)
	}
}
