package hybrid

import (
	"testing"
	"time"

	"gahitec/internal/bench"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/netlist"
	"gahitec/internal/testgen"

	"math/rand"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func mustParse(t *testing.T, src, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGAHITECOnS27(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(8*c.SeqDepth(), 0.05)
	cfg.Seed = 1
	res := Run(c, faults, cfg)

	if len(res.Passes) != 3 {
		t.Fatalf("passes = %d", len(res.Passes))
	}
	last := res.Passes[2]
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatalf("accounting: %d det + %d unt + %d abort != %d total",
			last.Detected, last.Untestable, last.Aborted, res.TotalFaults)
	}
	// Monotone cumulative columns.
	for i := 1; i < 3; i++ {
		if res.Passes[i].Detected < res.Passes[i-1].Detected ||
			res.Passes[i].Vectors < res.Passes[i-1].Vectors ||
			res.Passes[i].Untestable < res.Passes[i-1].Untestable ||
			res.Passes[i].Elapsed < res.Passes[i-1].Elapsed {
			t.Fatalf("pass stats not cumulative: %+v", res.Passes)
		}
	}
	if res.FaultCoverage() < 0.3 {
		t.Errorf("coverage only %.0f%%", 100*res.FaultCoverage())
	}
	if res.Phases.Targeted == 0 || res.Phases.ExciteProp == 0 {
		t.Error("phase counters empty")
	}
	t.Logf("s27 GA-HITEC: det=%d unt=%d abort=%d vec=%d cov=%.0f%% phases=%+v",
		last.Detected, last.Untestable, last.Aborted, last.Vectors,
		100*res.FaultCoverage(), res.Phases)
}

// Every test in the produced test set must be confirmed by replaying the
// whole flattened test set through a fresh fault simulator: the cumulative
// detection count must match the reported one.
func TestTestSetReplays(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(16, 0.05)
	cfg.Seed = 2
	res := Run(c, faults, cfg)

	replay := faultsim.New(c, faults)
	for _, seq := range res.TestSet {
		replay.ApplySequence(seq)
	}
	want := res.Passes[len(res.Passes)-1].Detected
	if replay.NumDetected() != want {
		t.Fatalf("replay detects %d, run reported %d", replay.NumDetected(), want)
	}
}

// Untestable faults identified by the run must never be detectable by
// random simulation.
func TestRunUntestableSound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		c := testgen.RandomCircuit(r, "rc", 3, 2, 15+r.Intn(15))
		faults := fault.Collapse(c)
		cfg := GAHITECConfig(8, 0.02)
		cfg.Seed = int64(trial)
		res := Run(c, faults, cfg)
		for _, f := range res.Untestable {
			seq := testgen.RandomSequence(r, 80, len(c.PIs), 0)
			if ok, _ := faultsim.Detects(c, f, seq); ok {
				t.Fatalf("trial %d: untestable %s detected by random vectors", trial, f.String(c))
			}
		}
	}
}

func TestHITECBaselineOnS27(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := HITECConfig(3, 0.05)
	cfg.Seed = 4
	res := Run(c, faults, cfg)
	last := res.Passes[len(res.Passes)-1]
	if last.Detected+last.Untestable+last.Aborted != res.TotalFaults {
		t.Fatal("HITEC accounting broken")
	}
	if res.Phases.GAJustifyCalls != 0 {
		t.Error("HITEC mode must not call the GA")
	}
	if res.Phases.DetJustifyCalls == 0 {
		t.Error("HITEC mode must call deterministic justification")
	}
	t.Logf("s27 HITEC: det=%d unt=%d vec=%d", last.Detected, last.Untestable, last.Vectors)
}

func TestDeterministicForSeed(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(16, 0.02)
	cfg.Seed = 7
	// Zero the time limits' influence by making them generous relative to
	// the tiny circuit; two runs with one seed must agree on the test set.
	a := Run(c, faults, cfg)
	b := Run(c, faults, cfg)
	if len(a.TestSet) != len(b.TestSet) {
		t.Fatalf("test set sizes differ: %d vs %d", len(a.TestSet), len(b.TestSet))
	}
	aLast, bLast := a.Passes[2], b.Passes[2]
	if aLast.Detected != bLast.Detected || aLast.Untestable != bLast.Untestable {
		t.Fatalf("results differ across identical runs: %+v vs %+v", aLast, bLast)
	}
}

func TestConfigsShape(t *testing.T) {
	cfg := GAHITECConfig(24, 1)
	if len(cfg.Passes) != 3 {
		t.Fatal("GAHITEC wants 3 passes")
	}
	p := cfg.Passes
	if p[0].Method != MethodGA || p[1].Method != MethodGA || p[2].Method != MethodDet {
		t.Error("pass methods wrong")
	}
	if p[0].Population != 64 || p[1].Population != 128 {
		t.Error("populations not 64/128 (Table I)")
	}
	if p[0].Generations != 4 || p[1].Generations != 8 {
		t.Error("generations not 4/8 (Table I)")
	}
	if p[0].SeqLen != 12 || p[1].SeqLen != 24 {
		t.Error("sequence lengths not x/2, x (Table I)")
	}
	if p[0].TimePerFault != time.Second || p[1].TimePerFault != 10*time.Second || p[2].TimePerFault != 100*time.Second {
		t.Error("time limits not 1/10/100 s (Table I)")
	}
	h := HITECConfig(3, 1)
	if h.Passes[0].MaxBacktracks*10 != h.Passes[1].MaxBacktracks ||
		h.Passes[1].MaxBacktracks*10 != h.Passes[2].MaxBacktracks {
		t.Error("HITEC backtrack limits must scale by 10")
	}
	if m := MethodGA.String(); m != "GA" {
		t.Errorf("MethodGA = %q", m)
	}
}

// GA-HITEC on a shift-register-heavy circuit: the GA should justify states
// easily, giving high coverage in pass 1 already.
func TestGAHITECShiftCircuit(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
q1 = DFF(a)
q2 = DFF(q1)
q3 = DFF(q2)
n1 = AND(q1, q3)
n2 = XOR(n1, q2)
z = OR(n2, b)
`
	c := mustParse(t, src, "shifty")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(12, 0.05)
	cfg.Seed = 5
	res := Run(c, faults, cfg)
	if res.Passes[0].Detected == 0 {
		t.Error("pass 1 detected nothing on an easily justifiable circuit")
	}
	if res.FaultCoverage() < 0.5 {
		t.Errorf("final coverage %.0f%%", 100*res.FaultCoverage())
	}
}

// The preprocessing screen must identify injected-redundancy faults before
// pass 1 and never mark a detectable fault.
func TestPreprocessUntestable(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(z)
n = AND(a, b)
m = OR(a, n)
z = XOR(m, q)
`
	c := mustParse(t, src, "red")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(8, 0.02)
	cfg.Seed = 11
	cfg.PreprocessUntestable = true
	res := Run(c, faults, cfg)
	if res.Phases.Preprocessed == 0 {
		t.Error("preprocessing found no untestable faults in a redundant circuit")
	}
	// Soundness: preprocessed untestables must not be detectable.
	r := rand.New(rand.NewSource(1))
	for _, f := range res.Untestable {
		seq := testgen.RandomSequence(r, 100, len(c.PIs), 0)
		if ok, _ := faultsim.Detects(c, f, seq); ok {
			t.Fatalf("preprocessed untestable %s detected by random vectors", f.String(c))
		}
	}
}

// Fault-aware (dual) deterministic justification should not increase verify
// failures relative to the fault-free ablation mode.
func TestDualJustifyNoWorseVerify(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	base := HITECConfig(2, 0.03)
	base.Seed = 13

	dual := base
	dualRes := Run(c, faults, dual)

	ff := base
	ff.FaultFreeJustify = true
	ffRes := Run(c, faults, ff)

	if dualRes.Phases.VerifyFailures > ffRes.Phases.VerifyFailures+2 {
		t.Errorf("dual justify verify failures %d vs fault-free %d",
			dualRes.Phases.VerifyFailures, ffRes.Phases.VerifyFailures)
	}
}

func TestVectorsFlatten(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)
	cfg := GAHITECConfig(16, 0.02)
	cfg.Seed = 9
	res := Run(c, faults, cfg)
	n := 0
	for _, seq := range res.TestSet {
		n += len(seq)
	}
	if len(res.Vectors()) != n {
		t.Fatal("Vectors() length mismatch")
	}
	if res.Passes[len(res.Passes)-1].Vectors != n {
		t.Fatalf("vector accounting: stats %d, test set %d",
			res.Passes[len(res.Passes)-1].Vectors, n)
	}
}
