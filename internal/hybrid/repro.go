package hybrid

import (
	"context"
	"fmt"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/audit"
	"gahitec/internal/fault"
	"gahitec/internal/ga"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// ReproReport is the outcome of replaying a crash-repro bundle.
type ReproReport struct {
	Kind     string // bundle kind
	Expected string // the outcome the bundle recorded
	Outcome  string // the outcome the replay produced
	Match    bool   // replay reproduced the recorded outcome

	// PanicSite is the injection site of a reproduced injected panic;
	// Detail carries a human-readable elaboration (audit record, mismatch
	// explanation).
	PanicSite string
	Detail    string
}

// Repro replays a crash-repro bundle against the circuit in single-fault
// isolation and reports whether the recorded outcome reproduced. The replay
// is deterministic: the search re-runs from the bundle's forked sub-seed,
// start state and effective pass parameters, with the bundle's normalized
// injection spec re-armed; an audit-miscompare bundle replays its test set
// on the serial reference simulator instead. ctx bounds the whole replay.
func Repro(ctx context.Context, c *netlist.Circuit, b *supervise.Bundle, rec *obs.Recorder) (*ReproReport, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if c.Name != b.Circuit {
		return nil, fmt.Errorf("hybrid: bundle is for circuit %q, not %q", b.Circuit, c.Name)
	}
	if fp := c.Fingerprint(); fp != b.Fingerprint {
		return nil, fmt.Errorf("hybrid: bundle fingerprint %s does not match circuit %q (%s): the netlist changed since the bundle was captured",
			b.Fingerprint, c.Name, fp)
	}
	f, err := SavedFault{Node: b.Fault.Node, Pin: b.Fault.Pin, Stuck: b.Fault.Stuck}.fault(c)
	if err != nil {
		return nil, fmt.Errorf("hybrid: bad bundle fault: %w", err)
	}
	if b.Kind == supervise.KindAuditMiscompare {
		return reproAudit(ctx, c, b, f, rec)
	}
	return reproSearch(ctx, c, b, f, rec)
}

// reproAudit replays the bundled test set on the serial reference simulator
// and checks that the demotion reproduces: the reference must not confirm
// the claim at its claimed vector.
func reproAudit(ctx context.Context, c *netlist.Circuit, b *supervise.Bundle, f fault.Fault, rec *obs.Recorder) (*ReproReport, error) {
	testSet := make([][]logic.Vector, len(b.TestSet))
	for i, ss := range b.TestSet {
		seq, err := parseSeq(ss, len(c.PIs))
		if err != nil {
			return nil, fmt.Errorf("hybrid: bad bundle sequence: %w", err)
		}
		testSet[i] = seq
	}
	rep, err := audit.VerifyObs(ctx, c, testSet, []audit.Claim{{Fault: f, Vector: b.ClaimVector}}, rec)
	if err != nil {
		return nil, err
	}
	r := rep.Records[0]
	outcome := "miscompare"
	if r.Verdict == audit.Confirmed {
		outcome = "confirmed"
	}
	return &ReproReport{
		Kind:     b.Kind,
		Expected: b.Outcome,
		Outcome:  outcome,
		Match:    outcome == b.Outcome,
		Detail:   r.String(c),
	}, nil
}

// reproSearch re-runs the bundled fault attempt: same effective pass
// parameters, same forked random stream, same start state, same (normalized)
// injected failures, and — for preemption bundles — the same watchdog.
func reproSearch(ctx context.Context, c *netlist.Circuit, b *supervise.Bundle, f fault.Fault, rec *obs.Recorder) (*ReproReport, error) {
	hooks, err := runctl.ParseInjectSpec(b.InjectSpec)
	if err != nil {
		return nil, fmt.Errorf("hybrid: bundle inject spec: %w", err)
	}
	startGood, err := logic.ParseVector(b.StartGood)
	if err != nil {
		return nil, fmt.Errorf("hybrid: bundle start state: %w", err)
	}
	if len(startGood) != len(c.DFFs) {
		return nil, fmt.Errorf("hybrid: bundle start state has %d flip-flops, circuit has %d", len(startGood), len(c.DFFs))
	}
	method := MethodDet
	if b.Params.Method == "GA" {
		method = MethodGA
	}
	pass := Pass{
		Method:          method,
		TimePerFault:    time.Duration(b.Params.TimePerFaultNS),
		Population:      b.Params.Population,
		Generations:     b.Params.Generations,
		SeqLen:          b.Params.SeqLen,
		MaxBacktracks:   b.Params.MaxBacktracks,
		JustifyAttempts: b.Params.JustifyAttempts,
	}
	if pass.JustifyAttempts < 1 {
		pass.JustifyAttempts = 1
	}
	cfg := Config{
		Seed:             b.Seed,
		MaxFrames:        b.Config.MaxFrames,
		WeightGood:       b.Config.WeightGood,
		Selection:        ga.Selection(b.Config.Selection),
		Crossover:        ga.Crossover(b.Config.Crossover),
		Overlapping:      b.Config.Overlapping,
		FaultFreeJustify: b.Config.FaultFreeJustify,
		Hooks:            hooks,
		Obs:              rec,
	}
	r := &runner{
		ctx:        ctx,
		c:          c,
		cfg:        cfg,
		engine:     atpg.NewEngine(c),
		res:        &Result{Circuit: c.Name},
		untestable: make(map[fault.Fault]bool),
		fp:         b.Fingerprint,
		quar:       make(map[fault.Fault]*Quarantined),
	}
	r.engine.SetHooks(hooks)
	r.engine.SetObs(rec)

	w := supervise.Watchdog{
		Ceiling: time.Duration(b.WatchdogCeilingNS),
		Stall:   time.Duration(b.WatchdogStallNS),
	}
	at := attempt{
		f: f, pass: pass, passNo: b.Pass, subSeed: b.SubSeed, startGood: startGood,
		label: r.faultLabel(f), rec: rec, engine: r.engine,
	}
	att := &attemptResult{}
	v := w.Do(ctx, func(ctx context.Context, pulse *runctl.Pulse) {
		r.searchFault(ctx, pulse, att, at)
	})

	var outcome string
	switch {
	case v.Outcome == supervise.Panicked:
		outcome = "panic"
	case v.Outcome.Preempted():
		outcome = v.Outcome.String()
	case att.accepted:
		outcome = "detected"
	case att.untestable:
		outcome = "untestable"
	default:
		outcome = "undecided"
	}
	rep := &ReproReport{
		Kind:      b.Kind,
		Expected:  b.Outcome,
		Outcome:   outcome,
		Match:     outcome == b.Outcome,
		PanicSite: v.PanicSite,
	}
	if rep.Match && b.PanicSite != "" && v.PanicSite != b.PanicSite {
		rep.Match = false
		rep.Detail = fmt.Sprintf("panic reproduced at site %q, bundle recorded %q", v.PanicSite, b.PanicSite)
	}
	if !rep.Match && rep.Detail == "" {
		rep.Detail = fmt.Sprintf("replay produced %q, bundle recorded %q", outcome, b.Outcome)
	}
	return rep, nil
}
