package hybrid

import (
	"context"
	"fmt"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/justify"
	"gahitec/internal/logic"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// attempt is the input of one supervised fault attempt: everything the
// search body needs, captured before the body starts, so a body the
// watchdog abandons shares no mutable run state with the rest of the run.
type attempt struct {
	f      fault.Fault
	pass   Pass // effective (possibly governor-degraded) parameters
	passNo int

	// subSeed is the attempt's own random stream, forked from the master
	// stream with a single draw. The body never touches the master stream,
	// so an abandoned body cannot advance it and the run stays resumable.
	subSeed int64

	// startGood is a private copy of the good machine's state when the
	// attempt began.
	startGood logic.Vector

	// label is the fault's telemetry label; rec is the recorder the search
	// body charges and engine the ATPG engine bound to it. Serially these
	// are the run recorder and engine; a speculative parallel attempt gets
	// a forked child recorder instead, so an attempt that is invalidated
	// and discarded leaves no trace in the run's metrics (the committed
	// attempt's child is adopted into the parent at commit).
	label  string
	rec    *obs.Recorder
	engine *atpg.Engine
}

// attemptResult is what the search body produces, mutated in place so the
// counter deltas survive a recovered panic. The driver reads it only when
// the body is known to have returned (never after an abandonment).
type attemptResult struct {
	phases     PhaseStats
	untestable bool
	seq        []logic.Vector
	accepted   bool
}

// superviseTarget runs the Fig. 1 flow for one fault under the configured
// governor and watchdog and applies the outcome to the run state. It
// returns the newly detected faults (for an accepted test), whether a test
// was accepted, and the outcome label for the fault's telemetry span:
// "detected", "untestable", "undecided", "panic", "preempt_ceiling" or
// "preempt_stall".
func (r *runner) superviseTarget(f fault.Fault, pass Pass, passNo int, subSeed int64) (newly []fault.Fault, accepted bool, outcome string) {
	eff := effectivePass(pass, r.sampleGovernor(passNo))
	at := r.newAttempt(f, eff, passNo, subSeed)
	r.res.Phases.Targeted++
	att, verdict := r.runAttempt(at)
	return r.applyAttempt(at, att, verdict)
}

// newAttempt captures one fault attempt's inputs from the committed run
// state, bound to the run's own recorder and engine (the serial/inline
// shape; the parallel driver substitutes a forked recorder).
func (r *runner) newAttempt(f fault.Fault, eff Pass, passNo int, subSeed int64) attempt {
	return attempt{
		f:         f,
		pass:      eff,
		passNo:    passNo,
		subSeed:   subSeed,
		startGood: r.fsim.GoodState(),
		label:     r.faultLabel(f),
		rec:       r.cfg.Obs,
		engine:    r.engine,
	}
}

// runAttempt executes one attempt's search body under the configured
// watchdog, blocking the calling goroutine until the body returns or is
// abandoned.
func (r *runner) runAttempt(at attempt) (*attemptResult, supervise.Verdict) {
	att := &attemptResult{}
	verdict := r.cfg.Watchdog.Do(r.ctx, func(ctx context.Context, pulse *runctl.Pulse) {
		r.searchFault(ctx, pulse, att, at)
	})
	return att, verdict
}

// effectivePass is the pass the attempt actually runs: the scheduled
// parameters degraded to the sampled load-shedding level.
func effectivePass(pass Pass, lvl supervise.Level) Pass {
	eff := degradePass(pass, lvl)
	if eff.JustifyAttempts < 1 {
		eff.JustifyAttempts = 1
	}
	return eff
}

// sampleGovernor probes memory pressure at this fault boundary and records
// any level change in the run's degradation log.
func (r *runner) sampleGovernor(passNo int) supervise.Level {
	if !r.cfg.Governor.Enabled() {
		return supervise.LevelNormal
	}
	return r.cfg.Governor.Sample(passNo)
}

// degradePass maps a governor level to tighter per-fault search parameters:
// Soft halves the GA population, generation count, sequence length and the
// backtrack allowance; Hard quarters them and drops the optional extra
// propagation solutions. Floors keep the search meaningful, zero fields
// (defaults resolved downstream) are left alone, and degradation never
// relaxes a parameter — so a degraded run differs from a full one only in
// per-fault effort, deterministically.
func degradePass(p Pass, lvl supervise.Level) Pass {
	div := 0
	switch lvl {
	case supervise.LevelSoft:
		div = 2
	case supervise.LevelHard:
		div = 4
	default:
		return p
	}
	shrink := func(v, floor int) int {
		if v <= 0 {
			return v
		}
		s := v / div
		if s < floor {
			s = floor
		}
		if s > v {
			s = v
		}
		return s
	}
	p.Population = shrink(p.Population, 16)
	p.Generations = shrink(p.Generations, 1)
	p.SeqLen = shrink(p.SeqLen, 2)
	p.MaxBacktracks = shrink(p.MaxBacktracks, 128)
	if lvl == supervise.LevelHard && p.JustifyAttempts > 1 {
		p.JustifyAttempts = 1
	}
	return p
}

// applyAttempt merges a finished (or abandoned) attempt into the run state
// on the run goroutine: counters, untestability proofs, the accepted test,
// quarantine entries and crash-repro bundles.
func (r *runner) applyAttempt(at attempt, att *attemptResult, v supervise.Verdict) (newly []fault.Fault, accepted bool, outcome string) {
	if !v.Abandoned {
		// The body has returned; its in-place deltas are complete (panic
		// included — increments made before the unwind stick, exactly as
		// the pre-supervision inline flow counted them). An abandoned
		// body's goroutine may still be writing, so its deltas are lost.
		r.res.Phases.add(att.phases)
	}
	switch {
	case v.Outcome == supervise.Panicked:
		r.res.Phases.Panics++
		if r.res.FirstPanic == "" {
			r.res.FirstPanic = fmt.Sprintf("%s\n\n%s", v.PanicValue, v.PanicStack)
		}
		q := r.quarantineFault(at.f, ReasonPanic)
		r.captureBundle(q, at, supervise.KindPanic, "panic", v)
		return nil, false, "panic"
	case v.Outcome.Preempted():
		r.res.Phases.Preempted++
		q := r.quarantineFault(at.f, ReasonPreempt)
		r.captureBundle(q, at, supervise.KindPreempt, v.Outcome.String(), v)
		r.cfg.Obs.Point("watchdog", "preempt", r.faultLabel(at.f), at.passNo, obs.Attrs{
			"beats":      float64(v.Beats),
			"abandoned":  boolAttr(v.Abandoned),
			"elapsed_us": float64(v.Elapsed.Microseconds()),
		})
		return nil, false, v.Outcome.String()
	}
	switch {
	case att.accepted:
		r.res.TestSet = append(r.res.TestSet, att.seq)
		r.res.Targets = append(r.res.Targets, at.f)
		newly = r.fsim.ApplySequence(att.seq)
		// Incidental = detected without being this attempt's target. When
		// an audit-demoted fault is re-targeted it is no longer in the
		// simulator's fault list, so the target may be absent from newly.
		incidental := 0
		for _, g := range newly {
			if g != at.f {
				incidental++
			}
		}
		r.res.Phases.IncidentalDetects += incidental
		if incidental > 0 {
			r.cfg.Obs.Counter("incidental_detects", int64(incidental))
		}
		return newly, true, "detected"
	case att.untestable:
		if !r.untestable[at.f] {
			r.untestable[at.f] = true
			r.res.Untestable = append(r.res.Untestable, at.f)
		}
		return nil, false, "untestable"
	default:
		// Undecided: the budget expired without a test or an untestability
		// proof. Quarantine for the end-of-run retry.
		q := r.quarantineFault(at.f, ReasonBudget)
		r.captureBundle(q, at, supervise.KindBudget, "undecided", v)
		return nil, false, "undecided"
	}
}

func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// searchFault is the supervised search body: the Fig. 1 flow for one fault.
// It runs — possibly on a watchdog goroutine the run may abandon — against
// only the state captured in the attempt, its own forked random stream, the
// in-place attemptResult, and the shared engines, which are safe for the
// purpose (read-only precomputation; hooks and the telemetry recorder carry
// their own locks; search frames and simulators are per call).
func (r *runner) searchFault(ctx context.Context, pulse *runctl.Pulse, att *attemptResult, at attempt) {
	rng := runctl.NewRand(at.subSeed)
	fctx := ctx
	if at.pass.TimePerFault > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithDeadline(ctx, time.Now().Add(at.pass.TimePerFault))
		defer cancel()
	}
	lim := atpg.Limits{
		MaxFrames:     r.cfg.MaxFrames,
		MaxBacktracks: at.pass.MaxBacktracks,
		Pulse:         pulse,
	}

	for n := 0; n < at.pass.JustifyAttempts; n++ {
		if n > 0 {
			att.phases.PropBacktracks++
		}
		epsp := at.rec.StartSpan("excite_prop", at.label, at.passNo)
		gen := at.engine.GenerateNthCtx(fctx, at.f, lim, n)
		switch gen.Status {
		case atpg.Untestable:
			epsp.End("untestable", nil)
			if n == 0 {
				att.untestable = true
			}
			return
		case atpg.Aborted:
			epsp.End("aborted", nil)
			return
		}
		att.phases.ExciteProp++
		epsp.End("success", obs.Attrs{
			"attempt":    float64(n),
			"backtracks": float64(gen.Backtracks),
			"frames":     float64(gen.Frames),
		})

		seq, ok := r.justifyAndBuild(fctx, pulse, at, att, gen, rng)
		if !ok {
			if fctx.Err() != nil {
				return
			}
			continue // backtrack into propagation: try the next solution
		}

		// Confirm with the independent fault simulator before counting.
		vsp := at.rec.StartSpan("verify", at.label, at.passNo)
		det, _ := faultsim.DetectsFrom(r.c, at.f, at.startGood, nil, seq)
		if !det {
			vsp.End("reject", obs.Attrs{"seq_len": float64(len(seq))})
			att.phases.VerifyFailures++
			if fctx.Err() != nil {
				return
			}
			continue
		}
		vsp.End("accept", obs.Attrs{"seq_len": float64(len(seq))})
		at.rec.Observe("seq_len", float64(len(seq)))
		att.seq, att.accepted = seq, true
		return
	}
}

// justifyAndBuild runs state justification for one propagation solution and,
// on success, assembles the full candidate test sequence (justification
// prefix + excitation/propagation vectors, X positions filled randomly from
// the attempt's forked stream).
func (r *runner) justifyAndBuild(ctx context.Context, pulse *runctl.Pulse, at attempt, att *attemptResult, gen atpg.Result, rng *runctl.Rand) ([]logic.Vector, bool) {
	f := at.f
	var prefix []logic.Vector
	switch at.pass.Method {
	case MethodGA:
		att.phases.GAJustifyCalls++
		sp := at.rec.StartSpan("ga_justify", at.label, at.passNo)
		req := justify.Request{
			TargetGood:   gen.RequiredGood,
			TargetFaulty: gen.RequiredFaulty,
			Fault:        &f,
			StartGood:    at.startGood,
		}
		jres := justify.GACtx(ctx, r.c, req, justify.Options{
			Population:  at.pass.Population,
			Generations: at.pass.Generations,
			SeqLen:      at.pass.SeqLen,
			WeightGood:  r.cfg.WeightGood,
			Seed:        rng.Int63(),
			Selection:   r.cfg.Selection,
			Crossover:   r.cfg.Crossover,
			Overlapping: r.cfg.Overlapping,
			Hooks:       r.cfg.Hooks,
			Pulse:       pulse,
			Obs:         at.rec,
			ObsFault:    at.label,
			ObsPass:     at.passNo,
		})
		if !jres.Found {
			sp.End("miss", obs.Attrs{
				"generations": float64(jres.Generations),
				"evaluations": float64(jres.Evaluations),
			})
			return nil, false
		}
		att.phases.GAJustifyFound++
		sp.End("found", obs.Attrs{
			"generations": float64(jres.Generations),
			"evaluations": float64(jres.Evaluations),
			"seq_len":     float64(len(jres.Sequence)),
		})
		prefix = jres.Sequence
	case MethodDet:
		att.phases.DetJustifyCalls++
		sp := at.rec.StartSpan("det_justify", at.label, at.passNo)
		lim := atpg.Limits{
			MaxFrames:     r.cfg.MaxFrames,
			MaxBacktracks: at.pass.MaxBacktracks,
			Pulse:         pulse,
		}
		var jres atpg.JustifyResult
		if r.cfg.FaultFreeJustify {
			jres = at.engine.JustifyCtx(ctx, gen.RequiredGood, lim)
		} else {
			jres = at.engine.JustifyDualCtx(ctx, f, gen.RequiredGood, gen.RequiredFaulty, lim)
		}
		if jres.Status != atpg.Success {
			sp.End("miss", obs.Attrs{"backtracks": float64(jres.Backtracks)})
			return nil, false
		}
		att.phases.DetJustifyFound++
		sp.End("found", obs.Attrs{
			"backtracks": float64(jres.Backtracks),
			"frames":     float64(jres.Frames),
		})
		prefix = fillX(rng, jres.Vectors)
	}
	seq := make([]logic.Vector, 0, len(prefix)+len(gen.Vectors))
	seq = append(seq, prefix...)
	seq = append(seq, fillX(rng, gen.Vectors)...)
	return seq, true
}

// fillX replaces unassigned input bits with random binary values; random
// fill maximizes incidental fault detection, which the fault simulator then
// credits.
func fillX(rng *runctl.Rand, seq []logic.Vector) []logic.Vector {
	out := make([]logic.Vector, len(seq))
	for i, v := range seq {
		w := v.Clone()
		for j := range w {
			if w[j] == logic.X {
				w[j] = logic.FromBit(uint64(rng.Intn(2)))
			}
		}
		out[i] = w
	}
	return out
}

// newBundle starts a crash-repro bundle with the run-level identity every
// kind shares: circuit, configuration knobs and the normalized injection
// spec.
func (r *runner) newBundle(kind, outcome string, f fault.Fault) *supervise.Bundle {
	return &supervise.Bundle{
		Version:     supervise.BundleVersion,
		Kind:        kind,
		RunID:       r.cfg.RunID,
		Circuit:     r.c.Name,
		Fingerprint: r.fp,
		Fault: supervise.BundleFault{
			Node:  int(f.Node),
			Pin:   f.Pin,
			Stuck: f.Stuck.String(),
			Name:  f.String(r.c),
		},
		Seed:        r.cfg.Seed,
		MasterDraws: r.rng.Draws(),
		Config: supervise.BundleConfig{
			MaxFrames:        r.cfg.MaxFrames,
			WeightGood:       r.cfg.WeightGood,
			Selection:        int(r.cfg.Selection),
			Crossover:        int(r.cfg.Crossover),
			Overlapping:      r.cfg.Overlapping,
			FaultFreeJustify: r.cfg.FaultFreeJustify,
		},
		InjectSpec: runctl.NormalizeInjectSpec(r.cfg.InjectSpec),
		Outcome:    outcome,
	}
}

// captureBundle builds the crash-repro bundle for a quarantined search
// attempt and publishes it. The first capture wins: a fault re-quarantined
// across passes or retries keeps the bundle of its original failure (an
// audit demotion replaces it — see runAudit — because the miscompare
// artifact supersedes an earlier budget bundle).
func (r *runner) captureBundle(q *Quarantined, at attempt, kind, outcome string, v supervise.Verdict) {
	if q.Bundle != nil {
		return
	}
	b := r.newBundle(kind, outcome, at.f)
	// Narrow the replayed injections to the failure modes that can produce
	// this bundle's outcome: a budget bundle captured while a panic rule was
	// armed for some other fault must not panic its own replay.
	switch kind {
	case supervise.KindPanic:
		b.InjectSpec = runctl.FilterInjectSpec(r.cfg.InjectSpec, "panic")
	case supervise.KindPreempt:
		b.InjectSpec = runctl.FilterInjectSpec(r.cfg.InjectSpec, "sleep")
	case supervise.KindBudget:
		b.InjectSpec = runctl.FilterInjectSpec(r.cfg.InjectSpec, "expire", "sleep")
	}
	b.SubSeed = at.subSeed
	b.StartGood = at.startGood.String()
	b.StartVectors = r.fsim.NumVectors()
	b.Pass = at.passNo
	b.Params = supervise.BundlePass{
		Method:          at.pass.Method.String(),
		TimePerFaultNS:  int64(at.pass.TimePerFault),
		Population:      at.pass.Population,
		Generations:     at.pass.Generations,
		SeqLen:          at.pass.SeqLen,
		MaxBacktracks:   at.pass.MaxBacktracks,
		JustifyAttempts: at.pass.JustifyAttempts,
	}
	b.PanicValue, b.PanicSite = v.PanicValue, v.PanicSite
	if kind == supervise.KindPreempt {
		b.WatchdogCeilingNS = int64(r.cfg.Watchdog.Ceiling)
		b.WatchdogStallNS = int64(r.cfg.Watchdog.Stall)
	}
	q.Bundle = b
	r.emitBundle(b)
}

// emitBundle counts the bundle and hands it to the configured sink.
func (r *runner) emitBundle(b *supervise.Bundle) {
	r.bundleSeq++
	r.cfg.Obs.Counter("bundle."+b.Kind, 1)
	r.cfg.Obs.Point("bundle", "captured", b.Fault.Name, b.Pass, obs.Attrs{
		"ordinal": float64(r.bundleSeq),
	})
	if r.cfg.Bundle != nil {
		r.cfg.Bundle(b)
	}
}
