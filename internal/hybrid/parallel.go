package hybrid

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/obs"
	"gahitec/internal/parallel"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// This file is the parallel fault pipeline: the per-pass fault loop run
// through the speculative ordered-commit pool (internal/parallel) instead of
// inline. Up to Config.Workers per-fault searches execute concurrently, each
// under its own watchdog supervision, against inputs speculated from the
// committed run state: the predicted sub-seed (a shadow copy of the master
// random stream), the committed good-machine state, and the scheduler's
// current degradation level. Outcomes commit strictly in serial fault order
// on the coordinator goroutine — detections, incidental-detection grading,
// quarantine entries, crash-repro bundles, telemetry and checkpoint
// boundaries all land exactly where the serial loop would put them — and any
// commit that changes state later speculations read (an accepted test, a
// degradation change) invalidates the outstanding speculative work. The
// result is bit-identical to the serial run for a given seed; the worker
// count only changes wall-clock time, never output (see DESIGN.md,
// "Ordered-commit determinism").

// workerExec is what one speculative search execution returns: the body's
// in-place result plus the watchdog's verdict.
type workerExec struct {
	att *attemptResult
	v   supervise.Verdict
}

// sampleScheduler is the parallel driver's counterpart of sampleGovernor:
// one deterministic sample per committed targeted fault. It returns the
// degradation level for this fault and the current worker-count target (0
// when no scheduler is installed: leave the pool's cap alone).
func (r *runner) sampleScheduler(passNo int) (supervise.Level, int) {
	if r.sched == nil {
		return supervise.LevelNormal, 0
	}
	return r.sched.Sample(passNo)
}

// runPassParallel is runPass with the fault loop run through the speculative
// pool. Structure mirrors runPass exactly; every commit-side effect happens
// in the same order, against the same state, as the serial loop's.
func (r *runner) runPassParallel(pi int, pass Pass, fi0 int, targets []fault.Fault, passStartSeqs, workers int) bool {
	if pass.JustifyAttempts < 1 {
		pass.JustifyAttempts = 1
	}
	remaining := make(map[fault.Fault]bool, len(r.fsim.Remaining()))
	for _, f := range r.fsim.Remaining() {
		remaining[f] = true
	}
	stillRemaining := make(map[fault.Fault]bool, len(targets))
	for _, f := range targets {
		if remaining[f] {
			stillRemaining[f] = true
		}
	}
	passT0 := time.Now()
	// The serial loop first reports progress after its first fault; with
	// searches in flight that can be a while, so announce the pass position
	// up front (ETA zero: the "--:--" sentinel until one fault commits).
	r.reportProgress(pi, fi0, fi0, len(targets), passT0)

	// shadow tracks the master random stream speculatively: re-synced to the
	// committed position at every epoch, advanced one draw per predicted
	// targeted fault, exactly as the commits will advance the master.
	var shadow *runctl.Rand

	return parallel.Run(r.ctx, parallel.Config[attempt, workerExec]{
		Items:   len(targets) - fi0,
		Workers: workers,
		Reset: func() {
			shadow = runctl.NewRand(r.cfg.Seed)
			shadow.Skip(r.rng.Draws())
		},
		Spec: func(i int) (attempt, bool) {
			f := targets[fi0+i]
			if !stillRemaining[f] || r.untestable[f] {
				return attempt{}, false
			}
			eff := effectivePass(pass, r.sched.Level())
			at := r.newAttempt(f, eff, pi+1, shadow.Int63())
			// The search body runs against a forked child recorder; its
			// events and counters are adopted into the run recorder only if
			// this speculation commits, so discarded attempts leave no trace.
			at.rec = r.cfg.Obs.Fork()
			at.engine = r.engine.WithObs(at.rec)
			return at, true
		},
		Exec: func(ctx context.Context, at attempt) workerExec {
			att := &attemptResult{}
			v := r.cfg.Watchdog.Do(ctx, func(ctx context.Context, pulse *runctl.Pulse) {
				r.searchFault(ctx, pulse, att, at)
			})
			return workerExec{att: att, v: v}
		},
		Commit: func(i int, at attempt, res workerExec) parallel.Directive {
			fi := fi0 + i
			if r.expired() {
				return parallel.Directive{Verdict: parallel.Stop}
			}
			sp := r.cfg.Obs.StartSpan("target", at.label, pi+1)
			subSeed := r.rng.Int63()
			lvl, wtarget := r.sampleScheduler(pi + 1)
			eff := effectivePass(pass, lvl)
			att, v := res.att, res.v
			invalidated := eff != at.pass
			if subSeed != at.subSeed || eff != at.pass {
				// The speculation ran against the wrong sub-seed or effort
				// level (a scheduler decision landed at this very fault).
				// Commit-order induction says the state inputs themselves are
				// right, but re-run inline with the committed parameters —
				// the serial fallback — rather than commit a wrong-effort
				// result. The stale child recorder is simply dropped.
				at = r.newAttempt(at.f, eff, pi+1, subSeed)
				att, v = r.runAttempt(at)
			} else {
				// Merge the committed attempt's telemetry into the run
				// recorder, in commit order. Fork and parent share a metrics
				// schema, so adoption cannot fail.
				_ = r.cfg.Obs.Adopt(at.rec)
			}
			r.res.Phases.Targeted++
			newly, accepted, outcome := r.applyAttempt(at, att, v)
			if r.expired() {
				// As in the serial loop: the run context died while this
				// fault was in flight, so its outcome must not reach the
				// checkpoint stream — the previous boundary's snapshot is the
				// last consistent state.
				sp.End("interrupted", nil)
				return parallel.Directive{Verdict: parallel.Stop}
			}
			if accepted {
				for _, g := range newly {
					delete(stillRemaining, g)
				}
				sp.End(outcome, obs.Attrs{"newly": float64(len(newly))})
			} else {
				sp.End(outcome, nil)
			}
			r.noteBoundary(pi, fi+1, passStartSeqs, false)
			r.reportProgress(pi, fi0, fi+1, len(targets), passT0)
			d := parallel.Directive{Workers: wtarget}
			if accepted || invalidated {
				// An accepted test changed the good-machine state, the
				// detection set and the master-stream pace; a degradation
				// change alters later attempts' effort. Either way the
				// outstanding speculations were derived from a stale world.
				d.Verdict = parallel.Invalidate
			}
			return d
		},
	})
}

// reportProgress emits the per-fault progress callback with the serial
// loop's exact ETA arithmetic. fi is the number of pass slots committed so
// far (index of the next fault), counting skipped slots, as in runPass.
func (r *runner) reportProgress(pi, fi0, fi, passTargets int, passT0 time.Time) {
	if r.cfg.Progress == nil {
		return
	}
	var eta time.Duration
	if done := fi - fi0; done > 0 {
		eta = time.Since(passT0) / time.Duration(done) * time.Duration(passTargets-fi)
		if eta < 0 {
			eta = 0
		}
	}
	r.cfg.Progress(Progress{
		Pass:        pi + 1,
		PassCount:   len(r.cfg.Passes),
		FaultIndex:  fi,
		PassTargets: passTargets,
		Detected:    r.fsim.NumDetected(),
		TotalFaults: r.res.TotalFaults,
		Vectors:     r.fsim.NumVectors(),
		Elapsed:     r.elapsed(),
		ETA:         eta,
	})
}

// screenOutcome is one preprocessing probe's result: the engine status, or a
// recovered panic.
type screenOutcome struct {
	status   atpg.Status
	panicked bool
	panicMsg string
}

// screenSpec is one preprocessing probe's speculative input: the fault and
// the forked recorder/engine pair charging it.
type screenSpec struct {
	f      fault.Fault
	rec    *obs.Recorder
	engine *atpg.Engine
}

// preprocessParallel is the untestability screen run through the pool. The
// probes are mutually independent — no invalidation ever happens — so this
// is a plain ordered fan-out: untestability marks, panic accounting and
// engine telemetry commit in fault-list order, identical to the serial
// screen.
func (r *runner) preprocessParallel(workers int) bool {
	sp := r.cfg.Obs.StartSpan("preprocess", "", 0)
	faults := append([]fault.Fault(nil), r.fsim.Remaining()...)
	ok := parallel.Run(r.ctx, parallel.Config[screenSpec, screenOutcome]{
		Items:   len(faults),
		Workers: workers,
		Spec: func(i int) (screenSpec, bool) {
			rec := r.cfg.Obs.Fork()
			return screenSpec{f: faults[i], rec: rec, engine: r.engine.WithObs(rec)}, true
		},
		Exec: func(ctx context.Context, s screenSpec) (out screenOutcome) {
			defer func() {
				if p := recover(); p != nil {
					out.panicked = true
					out.panicMsg = fmt.Sprintf("%v\n\n%s", p, debug.Stack())
				}
			}()
			res := s.engine.GenerateCtx(ctx, s.f, atpg.Limits{MaxFrames: 2, MaxBacktracks: 256})
			out.status = res.Status
			return out
		},
		Commit: func(i int, s screenSpec, out screenOutcome) parallel.Directive {
			if r.expired() {
				return parallel.Directive{Verdict: parallel.Stop}
			}
			_ = r.cfg.Obs.Adopt(s.rec)
			switch {
			case out.panicked:
				r.res.Phases.Panics++
				if r.res.FirstPanic == "" {
					r.res.FirstPanic = out.panicMsg
				}
			case out.status == atpg.Untestable:
				r.untestable[s.f] = true
				r.res.Untestable = append(r.res.Untestable, s.f)
				r.res.Phases.Preprocessed++
			}
			return parallel.Directive{}
		},
	}) // no Reset: probes read no committed state
	if !ok {
		sp.End("interrupted", nil)
		return false
	}
	sp.End("done", obs.Attrs{
		"screened":   float64(len(faults)),
		"untestable": float64(r.res.Phases.Preprocessed),
	})
	return true
}
