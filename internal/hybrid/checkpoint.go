package hybrid

import (
	"fmt"

	"gahitec/internal/fault"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/supervise"
)

// CheckpointVersion is the journal format version written by this build.
// Version 2 added the circuit structural fingerprint and the quarantine
// list; version 3 added the telemetry metrics snapshot; version 4 added
// per-quarantine crash-repro bundles and the governor's degradation log.
// Older journals are refused rather than resumed with unchecked assumptions.
const CheckpointVersion = 4

// Checkpoint is a resumable snapshot of a hybrid run, always taken at a
// fault boundary (never mid-search). It records everything Resume needs to
// continue the run bit-identically: the accumulated test set (replayed
// through a fresh fault simulator to rebuild detection state), the proven
// untestables, the schedule position, and the exact position in the seeded
// pseudo-random stream.
//
// The struct is plain JSON; runctl.SaveJSON writes it atomically so an
// interrupted writer never leaves a torn journal.
type Checkpoint struct {
	Version int    `json:"version"`
	Circuit string `json:"circuit"`

	// Fingerprint is the circuit's structural hash (netlist.Fingerprint).
	// The name alone cannot tell two revisions of a netlist apart, and
	// replaying a journal against a changed circuit silently produces
	// garbage; Validate refuses the mismatch instead.
	Fingerprint string `json:"fingerprint"`

	// RunID is the run correlation ID (Config.RunID), carried so a resumed
	// run keeps the identity it was submitted under. Optional — journals
	// from builds or runs without one still load (the field is informational
	// and never affects replayed state).
	RunID string `json:"run_id,omitempty"`

	Seed        int64 `json:"seed"`
	TotalFaults int   `json:"total_faults"`

	// PassIndex and FaultIndex locate the next fault to target: the
	// FaultIndex-th entry of the PassIndex-th pass's target snapshot.
	PassIndex  int `json:"pass_index"`
	FaultIndex int `json:"fault_index"`

	// PassStartSeqs is how many test sequences existed when the current
	// pass began; Resume replays that prefix, re-derives the pass's target
	// snapshot from the simulator, then replays the rest.
	PassStartSeqs int `json:"pass_start_seqs"`

	PreprocessDone bool `json:"preprocess_done"`

	// RNGDraws is the raw-draw position in the seeded random stream
	// (runctl.Rand); Resume fast-forwards a fresh stream to it.
	RNGDraws uint64 `json:"rng_draws"`

	// ElapsedNS is wall-clock time accumulated before the snapshot, so
	// resumed pass statistics keep counting from where the run left off.
	ElapsedNS int64 `json:"elapsed_ns"`

	TestSet    [][]string   `json:"test_set"` // one string per vector
	Targets    []SavedFault `json:"targets"`  // per TestSet entry
	Untestable []SavedFault `json:"untestable"`
	Passes     []PassStats  `json:"passes"`
	Phases     PhaseStats   `json:"phases"`
	FirstPanic string       `json:"first_panic,omitempty"`

	// Quarantine carries the faults set aside for the end-of-run retry
	// phase, in capture order, so a resumed run retries exactly what the
	// uninterrupted run would have.
	Quarantine []SavedQuarantine `json:"quarantine,omitempty"`

	// Obs is the telemetry metrics snapshot at this boundary (nil when the
	// run had no recorder). Resume merges it into the fresh recorder, so a
	// resumed run's final counters equal an uninterrupted run's — the
	// interrupted tail past the boundary never reaches the journal, exactly
	// like the rest of the run state.
	Obs *obs.Metrics `json:"obs,omitempty"`

	// Degradations is the governor's decision log up to this boundary, so a
	// resumed run reports the complete degradation history.
	Degradations []supervise.Decision `json:"degradations,omitempty"`
}

// SavedQuarantine is the JSON form of one quarantine entry. The bundle
// rides along so a resumed run's retries replay from the same forked
// sub-seed as the uninterrupted run's would.
type SavedQuarantine struct {
	Fault    SavedFault        `json:"fault"`
	Reason   string            `json:"reason"`
	Attempts int               `json:"attempts,omitempty"`
	Resolved bool              `json:"resolved,omitempty"`
	Bundle   *supervise.Bundle `json:"bundle,omitempty"`
}

// SavedFault is the JSON form of a fault site. Node indices are stable for
// a given netlist, which Validate pins down via the circuit name and fault
// count.
type SavedFault struct {
	Node  int    `json:"node"`
	Pin   int    `json:"pin"`
	Stuck string `json:"stuck"`
}

func saveFault(f fault.Fault) SavedFault {
	return SavedFault{Node: int(f.Node), Pin: f.Pin, Stuck: f.Stuck.String()}
}

func (sf SavedFault) fault(c *netlist.Circuit) (fault.Fault, error) {
	if sf.Node < 0 || sf.Node >= len(c.Nodes) {
		return fault.Fault{}, fmt.Errorf("node %d out of range", sf.Node)
	}
	if len(sf.Stuck) != 1 {
		return fault.Fault{}, fmt.Errorf("bad stuck value %q", sf.Stuck)
	}
	v, err := logic.ParseV(sf.Stuck[0])
	if err != nil || !v.IsKnown() {
		return fault.Fault{}, fmt.Errorf("bad stuck value %q", sf.Stuck)
	}
	return fault.Fault{Node: netlist.ID(sf.Node), Pin: sf.Pin, Stuck: v}, nil
}

func saveFaults(fs []fault.Fault) []SavedFault {
	out := make([]SavedFault, len(fs))
	for i, f := range fs {
		out[i] = saveFault(f)
	}
	return out
}

func saveSeq(seq []logic.Vector) []string {
	out := make([]string, len(seq))
	for i, v := range seq {
		out[i] = v.String()
	}
	return out
}

func parseSeq(ss []string, nPI int) ([]logic.Vector, error) {
	out := make([]logic.Vector, len(ss))
	for i, s := range ss {
		v, err := logic.ParseVector(s)
		if err != nil {
			return nil, err
		}
		if len(v) != nPI {
			return nil, fmt.Errorf("vector %q has %d bits, circuit has %d inputs", s, len(v), nPI)
		}
		out[i] = v
	}
	return out, nil
}

// Validate checks that the checkpoint is internally consistent and belongs
// to this circuit and configuration. Resume calls it before touching any
// state; a mismatched seed or circuit is rejected rather than silently
// producing a non-reproducible run.
func (ck *Checkpoint) Validate(c *netlist.Circuit, cfg Config, totalFaults int) error {
	switch {
	case ck.Version != CheckpointVersion:
		return fmt.Errorf("hybrid: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	case ck.Circuit != c.Name:
		return fmt.Errorf("hybrid: checkpoint is for circuit %q, not %q", ck.Circuit, c.Name)
	case ck.Fingerprint != c.Fingerprint():
		return fmt.Errorf("hybrid: checkpoint fingerprint %s does not match circuit %q (%s): the netlist changed since the journal was written",
			ck.Fingerprint, c.Name, c.Fingerprint())
	case ck.Seed != cfg.Seed:
		return fmt.Errorf("hybrid: checkpoint seed %d does not match configured seed %d", ck.Seed, cfg.Seed)
	case ck.TotalFaults != totalFaults:
		return fmt.Errorf("hybrid: checkpoint has %d faults, fault list has %d", ck.TotalFaults, totalFaults)
	case ck.PassIndex < 0 || ck.PassIndex > len(cfg.Passes):
		return fmt.Errorf("hybrid: checkpoint pass %d outside the %d-pass schedule", ck.PassIndex, len(cfg.Passes))
	case ck.FaultIndex < 0:
		return fmt.Errorf("hybrid: negative fault index %d", ck.FaultIndex)
	case len(ck.Targets) != len(ck.TestSet):
		return fmt.Errorf("hybrid: %d targets for %d sequences", len(ck.Targets), len(ck.TestSet))
	case ck.PassStartSeqs < 0 || ck.PassStartSeqs > len(ck.TestSet):
		return fmt.Errorf("hybrid: pass start %d outside test set of %d", ck.PassStartSeqs, len(ck.TestSet))
	case len(ck.Passes) > len(cfg.Passes):
		return fmt.Errorf("hybrid: checkpoint has %d completed passes, schedule has %d", len(ck.Passes), len(cfg.Passes))
	}
	for _, ss := range ck.TestSet {
		if _, err := parseSeq(ss, len(c.PIs)); err != nil {
			return fmt.Errorf("hybrid: bad checkpoint sequence: %w", err)
		}
	}
	for _, sf := range append(append([]SavedFault(nil), ck.Targets...), ck.Untestable...) {
		if _, err := sf.fault(c); err != nil {
			return fmt.Errorf("hybrid: bad checkpoint fault: %w", err)
		}
	}
	for _, sq := range ck.Quarantine {
		if _, err := sq.Fault.fault(c); err != nil {
			return fmt.Errorf("hybrid: bad quarantined fault: %w", err)
		}
		if _, err := parseReason(sq.Reason); err != nil {
			return err
		}
		if sq.Bundle != nil {
			if err := sq.Bundle.Validate(); err != nil {
				return fmt.Errorf("hybrid: bad quarantine bundle: %w", err)
			}
		}
	}
	return nil
}
