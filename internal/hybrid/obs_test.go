package hybrid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gahitec/internal/fault"
	"gahitec/internal/obs"
)

// The reconciliation contract: the telemetry recorder's span and outcome
// counters are emitted at exactly the boundaries where the Fig. 1 phase
// counters increment, so the two independent accountings must agree.
func TestObsReconcilesWithPhaseStats(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var buf bytes.Buffer
	rec := obs.New(&buf)
	cfg := GAHITECConfig(16, 0.05)
	cfg.Seed = 21
	cfg.Obs = rec
	res := Run(c, faults, cfg)
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder sink error: %v", err)
	}
	m := rec.MetricsSnapshot()

	checks := []struct {
		name string
		got  int64
		want int
	}{
		{`Spans["target"]`, m.Spans["target"], res.Phases.Targeted},
		{`Counters["excite_prop:success"]`, m.Counters["excite_prop:success"], res.Phases.ExciteProp},
		{`Spans["ga_justify"]`, m.Spans["ga_justify"], res.Phases.GAJustifyCalls},
		{`Counters["ga_justify:found"]`, m.Counters["ga_justify:found"], res.Phases.GAJustifyFound},
		{`Spans["det_justify"]`, m.Spans["det_justify"], res.Phases.DetJustifyCalls},
		{`Counters["det_justify:found"]`, m.Counters["det_justify:found"], res.Phases.DetJustifyFound},
		{`Counters["verify:reject"]`, m.Counters["verify:reject"], res.Phases.VerifyFailures},
		{`Counters["incidental_detects"]`, m.Counters["incidental_detects"], res.Phases.IncidentalDetects},
	}
	for _, ck := range checks {
		if ck.got != int64(ck.want) {
			t.Errorf("%s = %d, PhaseStats says %d", ck.name, ck.got, ck.want)
		}
	}
	if res.Phases.Targeted == 0 || res.Phases.GAJustifyCalls == 0 {
		t.Fatal("run exercised no targets; reconciliation test is vacuous")
	}
	// One accepted sequence length observed per test in the set.
	if h := m.Histograms["seq_len"]; h == nil || h.Count != int64(len(res.TestSet)) {
		t.Errorf("seq_len histogram count != len(TestSet)=%d: %+v", len(res.TestSet), h)
	}
	// Every fault-simulator grading is one span.
	if m.Spans["fault_sim"] != int64(len(res.TestSet)) {
		t.Errorf("fault_sim spans = %d, test set has %d sequences",
			m.Spans["fault_sim"], len(res.TestSet))
	}

	// The event stream is parseable NDJSON with strictly increasing Seq.
	out := buf.String()
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lastSeq := uint64(0)
	lines := 0
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		if e.Seq <= lastSeq {
			t.Fatalf("Seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		lines++
	}
	if lines == 0 {
		t.Fatal("no events emitted")
	}
	for _, want := range []string{`"target"`, `"ga_justify"`, `"fault_sim"`, `"pass_end"`} {
		if !strings.Contains(out, want) {
			t.Errorf("stream missing %s", want)
		}
	}
}

// Audit telemetry reconciles with the audit report.
func TestObsAuditCounters(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	rec := obs.New(nil)
	cfg := GAHITECConfig(16, 0.05)
	cfg.Seed = 22
	cfg.Obs = rec
	cfg.Audit = true
	res := Run(c, faults, cfg)
	if res.Audit == nil {
		t.Fatal("audit report missing")
	}
	m := rec.MetricsSnapshot()
	if got := m.Counters["audit.confirmed"]; got != int64(res.Audit.Confirmed) {
		t.Errorf("audit.confirmed = %d, report says %d", got, res.Audit.Confirmed)
	}
	if m.Spans["audit"] == 0 {
		t.Error("no audit span recorded")
	}
}

// Progress callbacks fire at every fault boundary with sane monotone values.
func TestProgressCallback(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	var got []Progress
	cfg := GAHITECConfig(16, 0.05)
	cfg.Seed = 23
	cfg.Progress = func(p Progress) { got = append(got, p) }
	res := Run(c, faults, cfg)

	if len(got) == 0 {
		t.Fatal("no progress callbacks")
	}
	prev := Progress{}
	for i, p := range got {
		if p.Pass < prev.Pass || (p.Pass == prev.Pass && p.FaultIndex <= prev.FaultIndex) {
			t.Fatalf("progress %d not monotone: %+v after %+v", i, p, prev)
		}
		if p.Detected < prev.Detected || p.Vectors < prev.Vectors {
			t.Fatalf("progress %d counters regressed: %+v after %+v", i, p, prev)
		}
		if p.TotalFaults != res.TotalFaults {
			t.Fatalf("progress %d total faults %d != %d", i, p.TotalFaults, res.TotalFaults)
		}
		if cov := p.Coverage(); cov < 0 || cov > 1 {
			t.Fatalf("progress %d coverage %f out of range", i, cov)
		}
		prev = p
	}
	last := got[len(got)-1]
	if last.Detected != res.Passes[len(res.Passes)-1].Detected {
		t.Errorf("final progress detected %d, result says %d",
			last.Detected, res.Passes[len(res.Passes)-1].Detected)
	}
}

// stripWallClock removes the wall-clock-dependent parts of a metrics
// snapshot: an interrupted+resumed run re-does the interrupted fault, so its
// phase durations legitimately differ from an uninterrupted run's, while
// every count and every value-distribution must match exactly.
func stripWallClock(m *obs.Metrics) {
	m.PhaseNS = nil
	for name := range m.Histograms {
		if strings.HasPrefix(name, "phase_ms:") {
			delete(m.Histograms, name)
		}
	}
}

// The checkpoint carries the metrics snapshot: interrupt a run mid-pass,
// resume it with a fresh recorder, and the merged final metrics must equal
// the uninterrupted run's, counter for counter.
func TestObsResumeMetricsEqualUninterrupted(t *testing.T) {
	c := mustParse(t, s27, "s27")
	faults := fault.Collapse(c)

	mkCfg := func(rec *obs.Recorder) Config {
		cfg := deterministicConfig(31)
		cfg.Obs = rec
		return cfg
	}

	fullRec := obs.New(nil)
	Run(c, faults, mkCfg(fullRec))
	want := fullRec.MetricsSnapshot()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	boundaries := 0
	partRec := obs.New(nil)
	cfg := mkCfg(partRec)
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(ck *Checkpoint) {
		last = ck
		boundaries++
		if boundaries == 5 {
			cancel()
		}
	}
	part := RunCtx(ctx, c, faults, cfg)
	if !part.Interrupted {
		t.Skip("run finished before the interrupt landed")
	}
	if last == nil || last.Obs == nil {
		t.Fatal("no metrics-bearing snapshot emitted before interrupt")
	}

	resumeRec := obs.New(nil)
	if _, err := Resume(context.Background(), c, faults, mkCfg(resumeRec), last); err != nil {
		t.Fatal(err)
	}
	got := resumeRec.MetricsSnapshot()

	stripWallClock(want)
	stripWallClock(got)
	if !reflect.DeepEqual(want.Counters, got.Counters) {
		t.Errorf("counters diverged:\nfull:    %v\nresumed: %v", want.Counters, got.Counters)
	}
	if !reflect.DeepEqual(want.Spans, got.Spans) {
		t.Errorf("spans diverged:\nfull:    %v\nresumed: %v", want.Spans, got.Spans)
	}
	if !reflect.DeepEqual(want.Histograms, got.Histograms) {
		t.Errorf("value histograms diverged:\nfull:    %+v\nresumed: %+v",
			want.Histograms, got.Histograms)
	}
}
