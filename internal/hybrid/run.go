package hybrid

import (
	"math/rand"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/justify"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

// runner holds the mutable state of one test-generation run.
type runner struct {
	c      *netlist.Circuit
	cfg    Config
	engine *atpg.Engine
	fsim   *faultsim.Simulator
	rng    *rand.Rand

	res        *Result
	untestable map[fault.Fault]bool
}

// Run executes the configured multi-pass schedule over the fault list and
// returns the per-pass statistics, the test set, and the identified
// untestable faults.
func Run(c *netlist.Circuit, faults []fault.Fault, cfg Config) *Result {
	r := &runner{
		c:      c,
		cfg:    cfg,
		engine: atpg.NewEngine(c),
		fsim:   faultsim.New(c, faults),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		res: &Result{
			Circuit:     c.Name,
			TotalFaults: len(faults),
		},
		untestable: make(map[fault.Fault]bool),
	}
	start := time.Now()
	if cfg.PreprocessUntestable {
		r.preprocess()
	}
	for pi, pass := range cfg.Passes {
		r.runPass(pi, pass)
		remaining := 0
		for _, f := range r.fsim.Remaining() {
			if !r.untestable[f] {
				remaining++
			}
		}
		stats := PassStats{
			Pass:       pi + 1,
			Detected:   r.fsim.NumDetected(),
			Vectors:    r.fsim.NumVectors(),
			Elapsed:    time.Since(start),
			Untestable: len(r.res.Untestable),
			Aborted:    remaining,
		}
		r.res.Passes = append(r.res.Passes, stats)
		if cfg.Continue != nil && pi < len(cfg.Passes)-1 && !cfg.Continue(stats) {
			break
		}
	}
	return r.res
}

// preprocess runs a cheap exhaustive screen over the fault list and marks
// faults whose excitation or propagation provably cannot succeed (the
// "filter untestable faults in advance" speedup from the paper's
// conclusions). The screen uses a two-frame window — untestability proofs
// are frame-independent (exhaustion without a fault effect crossing the
// window boundary) — and a small backtrack budget so screening stays cheap.
func (r *runner) preprocess() {
	for _, f := range r.fsim.Remaining() {
		res := r.engine.Generate(f, atpg.Limits{MaxFrames: 2, MaxBacktracks: 256})
		if res.Status == atpg.Untestable {
			r.untestable[f] = true
			r.res.Untestable = append(r.res.Untestable, f)
			r.res.Phases.Preprocessed++
		}
	}
}

// runPass targets every still-undetected, not-proven-untestable fault once.
func (r *runner) runPass(passIdx int, pass Pass) {
	if pass.JustifyAttempts < 1 {
		pass.JustifyAttempts = 1
	}
	// Snapshot: faults detected mid-pass are skipped when their turn comes.
	targets := append([]fault.Fault(nil), r.fsim.Remaining()...)
	stillRemaining := make(map[fault.Fault]bool, len(targets))
	for _, f := range targets {
		stillRemaining[f] = true
	}
	for _, f := range targets {
		if !stillRemaining[f] || r.untestable[f] {
			continue
		}
		for _, g := range r.targetFault(f, pass) {
			delete(stillRemaining, g)
		}
	}
}

// targetFault runs the Fig. 1 flow for one fault and returns the faults
// newly detected by any accepted test.
func (r *runner) targetFault(f fault.Fault, pass Pass) []fault.Fault {
	deadline := time.Now().Add(pass.TimePerFault)
	lim := atpg.Limits{
		MaxFrames:     r.cfg.MaxFrames,
		MaxBacktracks: pass.MaxBacktracks,
		Deadline:      deadline,
	}
	r.res.Phases.Targeted++

	for attempt := 0; attempt < pass.JustifyAttempts; attempt++ {
		if attempt > 0 {
			r.res.Phases.PropBacktracks++
		}
		gen := r.engine.GenerateNth(f, lim, attempt)
		switch gen.Status {
		case atpg.Untestable:
			if attempt == 0 {
				r.untestable[f] = true
				r.res.Untestable = append(r.res.Untestable, f)
			}
			return nil
		case atpg.Aborted:
			return nil
		}
		r.res.Phases.ExciteProp++

		seq, ok := r.justifyAndBuild(f, pass, gen, deadline)
		if !ok {
			if time.Now().After(deadline) {
				return nil
			}
			continue // backtrack into propagation: try the next solution
		}

		// Confirm with the independent fault simulator before counting.
		if det, _ := faultsim.DetectsFrom(r.c, f, r.fsim.GoodState(), nil, seq); !det {
			r.res.Phases.VerifyFailures++
			if time.Now().After(deadline) {
				return nil
			}
			continue
		}
		r.res.TestSet = append(r.res.TestSet, seq)
		r.res.Targets = append(r.res.Targets, f)
		newly := r.fsim.ApplySequence(seq)
		r.res.Phases.IncidentalDetects += len(newly) - 1
		return newly
	}
	return nil
}

// justifyAndBuild runs state justification for one propagation solution and,
// on success, assembles the full candidate test sequence (justification
// prefix + excitation/propagation vectors, X positions filled randomly).
func (r *runner) justifyAndBuild(f fault.Fault, pass Pass, gen atpg.Result, deadline time.Time) ([]logic.Vector, bool) {
	var prefix []logic.Vector
	switch pass.Method {
	case MethodGA:
		r.res.Phases.GAJustifyCalls++
		req := justify.Request{
			TargetGood:   gen.RequiredGood,
			TargetFaulty: gen.RequiredFaulty,
			Fault:        &f,
			StartGood:    r.fsim.GoodState(),
		}
		jres := justify.GA(r.c, req, justify.Options{
			Population:  pass.Population,
			Generations: pass.Generations,
			SeqLen:      pass.SeqLen,
			WeightGood:  r.cfg.WeightGood,
			Seed:        r.rng.Int63(),
			Selection:   r.cfg.Selection,
			Crossover:   r.cfg.Crossover,
			Overlapping: r.cfg.Overlapping,
		})
		if !jres.Found {
			return nil, false
		}
		r.res.Phases.GAJustifyFound++
		prefix = jres.Sequence
	case MethodDet:
		r.res.Phases.DetJustifyCalls++
		lim := atpg.Limits{
			MaxFrames:     r.cfg.MaxFrames,
			MaxBacktracks: pass.MaxBacktracks,
			Deadline:      deadline,
		}
		var jres atpg.JustifyResult
		if r.cfg.FaultFreeJustify {
			jres = r.engine.Justify(gen.RequiredGood, lim)
		} else {
			jres = r.engine.JustifyDual(f, gen.RequiredGood, gen.RequiredFaulty, lim)
		}
		if jres.Status != atpg.Success {
			return nil, false
		}
		r.res.Phases.DetJustifyFound++
		prefix = r.fillX(jres.Vectors)
	}
	seq := make([]logic.Vector, 0, len(prefix)+len(gen.Vectors))
	seq = append(seq, prefix...)
	seq = append(seq, r.fillX(gen.Vectors)...)
	return seq, true
}

// fillX replaces unassigned input bits with random binary values; random
// fill maximizes incidental fault detection, which the fault simulator then
// credits.
func (r *runner) fillX(seq []logic.Vector) []logic.Vector {
	out := make([]logic.Vector, len(seq))
	for i, v := range seq {
		w := v.Clone()
		for j := range w {
			if w[j] == logic.X {
				w[j] = logic.FromBit(uint64(r.rng.Intn(2)))
			}
		}
		out[i] = w
	}
	return out
}
