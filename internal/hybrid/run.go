package hybrid

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
	"gahitec/internal/supervise"
)

// runner holds the mutable state of one test-generation run.
type runner struct {
	ctx    context.Context
	c      *netlist.Circuit
	cfg    Config
	engine *atpg.Engine
	fsim   *faultsim.Simulator
	rng    *runctl.Rand

	res        *Result
	untestable map[fault.Fault]bool
	fp         string // circuit structural fingerprint, cached

	// sched is the run-global scheduler of a parallel run (Config.Workers >
	// 1 with a Governor installed): the Governor's thresholds promoted to
	// worker-count throttling. Nil for serial runs, which sample the
	// Governor directly.
	sched *supervise.Scheduler

	quar      map[fault.Fault]*Quarantined
	quarOrder []*Quarantined // quarantine entries in capture order
	bundleSeq int            // crash-repro bundles captured so far

	start       time.Time
	prevElapsed time.Duration // accumulated before a resume
	deadline    time.Time     // run context deadline (zero: none)

	// Resume position (zero values for a fresh run).
	preprocessDone bool
	startPass      int
	startFault     int
	resumeTargets  []fault.Fault // restored mid-pass target snapshot
	resumeSeqs     int           // PassStartSeqs of the restored pass

	lastSnap  *Checkpoint // most recent fault-boundary snapshot
	sinceCkpt int
}

// Run executes the configured multi-pass schedule over the fault list and
// returns the per-pass statistics, the test set, and the identified
// untestable faults.
func Run(c *netlist.Circuit, faults []fault.Fault, cfg Config) *Result {
	return RunCtx(context.Background(), c, faults, cfg)
}

// RunCtx is Run under a context: cancellation (or the context deadline)
// interrupts the run at the next fault boundary or mid-search via the
// engine budget, returning the partial Result with Interrupted set. If
// cfg.Checkpoint is set, the last consistent snapshot is emitted before
// returning, so the run can be continued with Resume.
func RunCtx(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) *Result {
	return newRunner(ctx, c, faults, cfg).run()
}

// Resume continues a run from a Checkpoint: it replays the recorded test
// set through a fresh fault simulator, fast-forwards the random stream to
// the recorded position, and picks the schedule up at the recorded fault
// boundary. With the same seed and schedule, the combined interrupted+
// resumed run produces the same test set and fault accounting as an
// uninterrupted run (as long as per-fault wall-clock limits are generous
// enough not to bind differently across the two executions).
func Resume(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, ck *Checkpoint) (*Result, error) {
	r := newRunner(ctx, c, faults, cfg)
	if err := r.restore(ck); err != nil {
		return nil, err
	}
	return r.run(), nil
}

func newRunner(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) *runner {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Checkpoint != nil && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	r := &runner{
		ctx:    ctx,
		c:      c,
		cfg:    cfg,
		engine: atpg.NewEngine(c),
		fsim:   faultsim.New(c, faults),
		rng:    runctl.NewRand(cfg.Seed),
		res: &Result{
			Circuit:     c.Name,
			TotalFaults: len(faults),
		},
		untestable: make(map[fault.Fault]bool),
		fp:         c.Fingerprint(),
		quar:       make(map[fault.Fault]*Quarantined),
	}
	if d, ok := ctx.Deadline(); ok {
		r.deadline = d
	}
	r.engine.SetHooks(cfg.Hooks)
	r.fsim.SetHooks(cfg.Hooks)
	r.engine.SetObs(cfg.Obs)
	if cfg.RunID != "" {
		cfg.Obs.SetRunID(cfg.RunID)
	}
	// The fault simulator's recorder is attached in run(), after any
	// restore: a resume replays the checkpointed test set through the
	// simulator, and that replay must not be re-billed — the checkpoint's
	// metrics snapshot already accounts for the original grading.
	return r
}

// faultLabel renders a fault for telemetry events; free when telemetry is
// off.
func (r *runner) faultLabel(f fault.Fault) string {
	if r.cfg.Obs == nil {
		return ""
	}
	return f.String(r.c)
}

// expired reports whether the run context is done or its deadline has
// passed. The deadline is compared against the wall clock directly, matching
// the engines' budgets: a context timer can fire microseconds after the
// deadline itself, and a fault whose search was clipped inside that window
// must count as interrupted, not be recorded as a regular outcome.
func (r *runner) expired() bool {
	return r.ctx.Err() != nil ||
		(!r.deadline.IsZero() && time.Now().After(r.deadline))
}

// restore rebuilds the runner's state from a checkpoint (see Resume).
func (r *runner) restore(ck *Checkpoint) error {
	if err := ck.Validate(r.c, r.cfg, r.res.TotalFaults); err != nil {
		return err
	}
	for _, sf := range ck.Untestable {
		f, err := sf.fault(r.c)
		if err != nil {
			return err
		}
		r.untestable[f] = true
		r.res.Untestable = append(r.res.Untestable, f)
	}
	r.res.Passes = append(r.res.Passes, ck.Passes...)
	r.res.Phases = ck.Phases
	r.res.FirstPanic = ck.FirstPanic
	// A resumed run keeps the identity it was submitted under: the journal's
	// correlation ID wins unless the caller explicitly re-identified the run.
	if r.cfg.RunID == "" && ck.RunID != "" {
		r.cfg.RunID = ck.RunID
		r.cfg.Obs.SetRunID(ck.RunID)
	}
	if ck.Obs != nil {
		if err := r.cfg.Obs.MergeMetrics(ck.Obs); err != nil {
			return fmt.Errorf("hybrid: checkpoint metrics: %w", err)
		}
	}
	r.prevElapsed = time.Duration(ck.ElapsedNS)
	r.preprocessDone = ck.PreprocessDone
	for _, sq := range ck.Quarantine {
		f, err := sq.Fault.fault(r.c)
		if err != nil {
			return err
		}
		reason, err := parseReason(sq.Reason)
		if err != nil {
			return err
		}
		q := r.captureQuarantine(f, reason)
		q.Attempts = sq.Attempts
		q.Resolved = sq.Resolved
		q.Bundle = sq.Bundle
		if q.Bundle != nil {
			r.bundleSeq++ // ordinals continue after the restored captures
		}
	}
	r.res.Degradations = append(r.res.Degradations, ck.Degradations...)

	// Replay the accumulated test set: the fault simulator re-derives the
	// detection state deterministically, and the pass's target snapshot is
	// re-taken at the exact sequence count where the pass originally began.
	for i, ss := range ck.TestSet {
		if i == ck.PassStartSeqs {
			r.resumeTargets = append([]fault.Fault(nil), r.fsim.Remaining()...)
		}
		seq, err := parseSeq(ss, len(r.c.PIs))
		if err != nil {
			return err
		}
		tf, err := ck.Targets[i].fault(r.c)
		if err != nil {
			return err
		}
		r.fsim.ApplySequence(seq)
		r.res.TestSet = append(r.res.TestSet, seq)
		r.res.Targets = append(r.res.Targets, tf)
	}
	if ck.PassStartSeqs == len(ck.TestSet) {
		r.resumeTargets = append([]fault.Fault(nil), r.fsim.Remaining()...)
	}
	r.resumeSeqs = ck.PassStartSeqs
	r.rng.Skip(ck.RNGDraws)
	r.startPass = ck.PassIndex
	r.startFault = ck.FaultIndex
	return nil
}

// run drives the schedule from the runner's (possibly restored) position.
func (r *runner) run() *Result {
	r.start = time.Now()
	r.fsim.SetObs(r.cfg.Obs)
	workers := r.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && r.cfg.Governor != nil {
		// Promote the governor to the run-global scheduler: same thresholds
		// and probe, but memory pressure throttles the worker count before
		// it sheds per-fault search effort. The schedule passes sample the
		// scheduler (at the same deterministic points the serial driver
		// samples its governor); the serial retry tail still samples the
		// governor itself.
		r.sched = &supervise.Scheduler{
			SoftBytes:  r.cfg.Governor.SoftBytes,
			HardBytes:  r.cfg.Governor.HardBytes,
			MaxWorkers: workers,
			// Two calm samples before any scale-up: heap hovering at a
			// threshold must not thrash the pool every other fault.
			DwellSamples: 2,
			Probe:        r.cfg.Governor.Probe,
			OnDecision: func(d supervise.Decision) {
				r.res.Degradations = append(r.res.Degradations, d)
				r.cfg.Obs.Point("governor", "decision", "", d.Pass, obs.Attrs{
					"sample":  float64(d.Sample),
					"heap":    float64(d.Heap),
					"level":   float64(levelOrd(d.To)),
					"workers": float64(d.ToWorkers),
				})
			},
		}
	}
	if r.cfg.Governor != nil {
		// Record every load-shedding decision on the Result and in the
		// telemetry stream, chaining any observer the caller installed. The
		// runner owns the governor for the duration of the run.
		user := r.cfg.Governor.OnDecision
		r.cfg.Governor.OnDecision = func(d supervise.Decision) {
			r.res.Degradations = append(r.res.Degradations, d)
			r.cfg.Obs.Point("governor", "decision", "", d.Pass, obs.Attrs{
				"sample": float64(d.Sample),
				"heap":   float64(d.Heap),
				"level":  float64(levelOrd(d.To)),
			})
			if user != nil {
				user(d)
			}
		}
	}
	if r.cfg.PreprocessUntestable && !r.preprocessDone {
		screen := r.preprocess
		if workers > 1 {
			screen = func() bool { return r.preprocessParallel(workers) }
		}
		if !screen() {
			return r.interrupted()
		}
		r.preprocessDone = true
	}
	for pi := r.startPass; pi < len(r.cfg.Passes); pi++ {
		pass := r.cfg.Passes[pi]
		fi0 := 0
		passStartSeqs := len(r.res.TestSet)
		var targets []fault.Fault
		if pi == r.startPass && r.resumeTargets != nil {
			fi0 = r.startFault
			targets = r.resumeTargets
			passStartSeqs = r.resumeSeqs
		} else {
			// Snapshot: faults detected mid-pass are skipped when their
			// turn comes.
			targets = append([]fault.Fault(nil), r.fsim.Remaining()...)
		}
		passOK := false
		if workers > 1 {
			// The pool's initial cap is the scheduler's current target, so
			// throttling survives pass boundaries; without a scheduler the
			// cap is simply the configured worker count.
			poolCap := workers
			if r.sched != nil {
				poolCap = r.sched.Workers()
			}
			passOK = r.runPassParallel(pi, pass, fi0, targets, passStartSeqs, poolCap)
		} else {
			passOK = r.runPass(pi, pass, fi0, targets, passStartSeqs)
		}
		if !passOK {
			return r.interrupted()
		}
		remaining := 0
		for _, f := range r.fsim.Remaining() {
			if !r.untestable[f] {
				remaining++
			}
		}
		stats := PassStats{
			Pass:       pi + 1,
			Detected:   r.fsim.NumDetected(),
			Vectors:    r.fsim.NumVectors(),
			Elapsed:    r.elapsed(),
			Untestable: len(r.res.Untestable),
			Aborted:    remaining,
		}
		r.res.Passes = append(r.res.Passes, stats)
		r.cfg.Obs.Point("run", "pass_end", "", pi+1, obs.Attrs{
			"detected":   float64(stats.Detected),
			"vectors":    float64(stats.Vectors),
			"untestable": float64(stats.Untestable),
			"aborted":    float64(stats.Aborted),
		})
		r.noteBoundary(pi+1, 0, len(r.res.TestSet), true)
		if r.cfg.Continue != nil && pi < len(r.cfg.Passes)-1 && !r.cfg.Continue(stats) {
			break
		}
	}
	return r.verifyAndRetry()
}

// verifyAndRetry runs the trust-but-verify tail of a completed schedule:
// audit the detection claims, re-target quarantined faults with escalated
// budgets, and re-audit if the retry phase changed the test set. The tail
// also runs after an early stop via Config.Continue — the test set is final
// either way — but not after an interrupt, where the checkpoint takes over.
func (r *runner) verifyAndRetry() *Result {
	r.snapshotDetections()
	if r.cfg.Audit && !r.runAudit() {
		return r.interrupted()
	}
	if !r.retryQuarantined() {
		r.finalizeQuarantine()
		return r.interrupted()
	}
	if r.res.Retry.Retried > 0 {
		r.snapshotDetections()
		if r.cfg.Audit && !r.runAudit() {
			r.finalizeQuarantine()
			return r.interrupted()
		}
	}
	r.finalizeQuarantine()
	return r.res
}

func (r *runner) elapsed() time.Duration {
	return r.prevElapsed + time.Since(r.start)
}

// interrupted finalizes an interrupted run: the last consistent snapshot is
// emitted so the run can be resumed, and the partial result returned.
func (r *runner) interrupted() *Result {
	r.res.Interrupted = true
	if r.cfg.Checkpoint != nil && r.lastSnap != nil {
		r.cfg.Checkpoint(r.lastSnap)
	}
	return r.res
}

// noteBoundary records a fault-boundary snapshot (position = next fault to
// target) and emits it on the configured cadence; force emits regardless.
func (r *runner) noteBoundary(pi, fi, passStartSeqs int, force bool) {
	if r.cfg.Checkpoint == nil {
		return
	}
	r.lastSnap = r.snapshot(pi, fi, passStartSeqs)
	r.sinceCkpt++
	if force || r.sinceCkpt >= r.cfg.CheckpointEvery {
		r.sinceCkpt = 0
		r.cfg.Checkpoint(r.lastSnap)
	}
}

// snapshot captures the run state at a fault boundary. Sequence and fault
// slices are converted to their serialized forms, so the snapshot shares no
// mutable state with the runner.
func (r *runner) snapshot(pi, fi, passStartSeqs int) *Checkpoint {
	ck := &Checkpoint{
		Version:        CheckpointVersion,
		Circuit:        r.c.Name,
		RunID:          r.cfg.RunID,
		Fingerprint:    r.fp,
		Seed:           r.cfg.Seed,
		TotalFaults:    r.res.TotalFaults,
		PassIndex:      pi,
		FaultIndex:     fi,
		PassStartSeqs:  passStartSeqs,
		PreprocessDone: r.preprocessDone,
		RNGDraws:       r.rng.Draws(),
		ElapsedNS:      int64(r.elapsed()),
		Targets:        saveFaults(r.res.Targets),
		Untestable:     saveFaults(r.res.Untestable),
		Passes:         append([]PassStats(nil), r.res.Passes...),
		Phases:         r.res.Phases,
		FirstPanic:     r.res.FirstPanic,
		Obs:            r.cfg.Obs.MetricsSnapshot(),
	}
	ck.TestSet = make([][]string, len(r.res.TestSet))
	for i, seq := range r.res.TestSet {
		ck.TestSet[i] = saveSeq(seq)
	}
	for _, q := range r.quarOrder {
		ck.Quarantine = append(ck.Quarantine, SavedQuarantine{
			Fault:    saveFault(q.Fault),
			Reason:   q.Reason.String(),
			Attempts: q.Attempts,
			Resolved: q.Resolved,
			Bundle:   q.Bundle,
		})
	}
	ck.Degradations = append([]supervise.Decision(nil), r.res.Degradations...)
	return ck
}

// guard runs fn inside a recover boundary: a panic in the engines marks the
// current fault aborted instead of killing the run. The first stack trace
// is kept for the report; every recovered panic is counted.
func (r *runner) guard(fn func()) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.res.Phases.Panics++
			if r.res.FirstPanic == "" {
				r.res.FirstPanic = fmt.Sprintf("%v\n\n%s", p, debug.Stack())
			}
			ok = false
		}
	}()
	fn()
	return true
}

// preprocess runs a cheap exhaustive screen over the fault list and marks
// faults whose excitation or propagation provably cannot succeed (the
// "filter untestable faults in advance" speedup from the paper's
// conclusions). The screen uses a two-frame window — untestability proofs
// are frame-independent (exhaustion without a fault effect crossing the
// window boundary) — and a small backtrack budget so screening stays cheap.
// The run context bounds the whole screen: cancellation (or the run
// deadline) stops it between faults and aborts the in-flight search.
// It returns false when interrupted.
func (r *runner) preprocess() bool {
	sp := r.cfg.Obs.StartSpan("preprocess", "", 0)
	screened := len(r.fsim.Remaining())
	for _, f := range r.fsim.Remaining() {
		if r.expired() {
			sp.End("interrupted", nil)
			return false
		}
		var res atpg.Result
		if !r.guard(func() {
			res = r.engine.GenerateCtx(r.ctx, f, atpg.Limits{MaxFrames: 2, MaxBacktracks: 256})
		}) {
			continue
		}
		if res.Status == atpg.Untestable {
			r.untestable[f] = true
			r.res.Untestable = append(r.res.Untestable, f)
			r.res.Phases.Preprocessed++
		}
	}
	sp.End("done", obs.Attrs{
		"screened":   float64(screened),
		"untestable": float64(r.res.Phases.Preprocessed),
	})
	return true
}

// runPass targets every still-undetected, not-proven-untestable fault once,
// starting at fi0 within the pass's target snapshot. It returns false when
// the run context was cancelled.
func (r *runner) runPass(pi int, pass Pass, fi0 int, targets []fault.Fault, passStartSeqs int) bool {
	if pass.JustifyAttempts < 1 {
		pass.JustifyAttempts = 1
	}
	remaining := make(map[fault.Fault]bool, len(r.fsim.Remaining()))
	for _, f := range r.fsim.Remaining() {
		remaining[f] = true
	}
	// Restrict to targets still undetected now; on a fresh pass this is the
	// whole snapshot, on a resumed pass it excludes faults detected by the
	// replayed mid-pass sequences.
	stillRemaining := make(map[fault.Fault]bool, len(targets))
	for _, f := range targets {
		if remaining[f] {
			stillRemaining[f] = true
		}
	}
	passT0 := time.Now()
	for fi := fi0; fi < len(targets); fi++ {
		if r.expired() {
			return false
		}
		f := targets[fi]
		if !stillRemaining[f] || r.untestable[f] {
			continue
		}
		sp := r.cfg.Obs.StartSpan("target", r.faultLabel(f), pi+1)
		newly, accepted, outcome := r.superviseTarget(f, pass, pi+1, r.rng.Int63())
		if r.expired() {
			// The run context died while this fault's search was in flight,
			// possibly clipping it mid-search. Its outcome is not what an
			// uninterrupted run would have computed, so it must not reach
			// the checkpoint stream: interrupt here and let the previous
			// boundary's snapshot stand as the last consistent state.
			sp.End("interrupted", nil)
			return false
		}
		if accepted {
			for _, g := range newly {
				delete(stillRemaining, g)
			}
			sp.End(outcome, obs.Attrs{"newly": float64(len(newly))})
		} else {
			sp.End(outcome, nil)
		}
		r.noteBoundary(pi, fi+1, passStartSeqs, false)
		if r.cfg.Progress != nil {
			done := fi + 1 - fi0
			var eta time.Duration
			if done > 0 {
				// Average-per-fault times remaining; dividing first keeps
				// the arithmetic far from int64 overflow, and a clock step
				// backwards is clamped rather than reported as a negative
				// countdown.
				eta = time.Since(passT0) / time.Duration(done) * time.Duration(len(targets)-fi-1)
				if eta < 0 {
					eta = 0
				}
			}
			r.cfg.Progress(Progress{
				Pass:        pi + 1,
				PassCount:   len(r.cfg.Passes),
				FaultIndex:  fi + 1,
				PassTargets: len(targets),
				Detected:    r.fsim.NumDetected(),
				TotalFaults: r.res.TotalFaults,
				Vectors:     r.fsim.NumVectors(),
				Elapsed:     r.elapsed(),
				ETA:         eta,
			})
		}
	}
	return true
}

// levelOrd maps a governor level name to its ordinal for telemetry attrs.
func levelOrd(s string) int {
	switch s {
	case "soft":
		return 1
	case "hard":
		return 2
	}
	return 0
}
