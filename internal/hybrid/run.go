package hybrid

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gahitec/internal/atpg"
	"gahitec/internal/fault"
	"gahitec/internal/faultsim"
	"gahitec/internal/justify"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
	"gahitec/internal/obs"
	"gahitec/internal/runctl"
)

// runner holds the mutable state of one test-generation run.
type runner struct {
	ctx    context.Context
	c      *netlist.Circuit
	cfg    Config
	engine *atpg.Engine
	fsim   *faultsim.Simulator
	rng    *runctl.Rand

	res        *Result
	untestable map[fault.Fault]bool
	fp         string // circuit structural fingerprint, cached

	quar      map[fault.Fault]*Quarantined
	quarOrder []*Quarantined // quarantine entries in capture order

	start       time.Time
	prevElapsed time.Duration // accumulated before a resume
	deadline    time.Time     // run context deadline (zero: none)

	// Resume position (zero values for a fresh run).
	preprocessDone bool
	startPass      int
	startFault     int
	resumeTargets  []fault.Fault // restored mid-pass target snapshot
	resumeSeqs     int           // PassStartSeqs of the restored pass

	lastSnap  *Checkpoint // most recent fault-boundary snapshot
	sinceCkpt int
}

// Run executes the configured multi-pass schedule over the fault list and
// returns the per-pass statistics, the test set, and the identified
// untestable faults.
func Run(c *netlist.Circuit, faults []fault.Fault, cfg Config) *Result {
	return RunCtx(context.Background(), c, faults, cfg)
}

// RunCtx is Run under a context: cancellation (or the context deadline)
// interrupts the run at the next fault boundary or mid-search via the
// engine budget, returning the partial Result with Interrupted set. If
// cfg.Checkpoint is set, the last consistent snapshot is emitted before
// returning, so the run can be continued with Resume.
func RunCtx(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) *Result {
	return newRunner(ctx, c, faults, cfg).run()
}

// Resume continues a run from a Checkpoint: it replays the recorded test
// set through a fresh fault simulator, fast-forwards the random stream to
// the recorded position, and picks the schedule up at the recorded fault
// boundary. With the same seed and schedule, the combined interrupted+
// resumed run produces the same test set and fault accounting as an
// uninterrupted run (as long as per-fault wall-clock limits are generous
// enough not to bind differently across the two executions).
func Resume(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config, ck *Checkpoint) (*Result, error) {
	r := newRunner(ctx, c, faults, cfg)
	if err := r.restore(ck); err != nil {
		return nil, err
	}
	return r.run(), nil
}

func newRunner(ctx context.Context, c *netlist.Circuit, faults []fault.Fault, cfg Config) *runner {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Checkpoint != nil && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	r := &runner{
		ctx:    ctx,
		c:      c,
		cfg:    cfg,
		engine: atpg.NewEngine(c),
		fsim:   faultsim.New(c, faults),
		rng:    runctl.NewRand(cfg.Seed),
		res: &Result{
			Circuit:     c.Name,
			TotalFaults: len(faults),
		},
		untestable: make(map[fault.Fault]bool),
		fp:         c.Fingerprint(),
		quar:       make(map[fault.Fault]*Quarantined),
	}
	if d, ok := ctx.Deadline(); ok {
		r.deadline = d
	}
	r.engine.SetHooks(cfg.Hooks)
	r.fsim.SetHooks(cfg.Hooks)
	r.engine.SetObs(cfg.Obs)
	// The fault simulator's recorder is attached in run(), after any
	// restore: a resume replays the checkpointed test set through the
	// simulator, and that replay must not be re-billed — the checkpoint's
	// metrics snapshot already accounts for the original grading.
	return r
}

// faultLabel renders a fault for telemetry events; free when telemetry is
// off.
func (r *runner) faultLabel(f fault.Fault) string {
	if r.cfg.Obs == nil {
		return ""
	}
	return f.String(r.c)
}

// expired reports whether the run context is done or its deadline has
// passed. The deadline is compared against the wall clock directly, matching
// the engines' budgets: a context timer can fire microseconds after the
// deadline itself, and a fault whose search was clipped inside that window
// must count as interrupted, not be recorded as a regular outcome.
func (r *runner) expired() bool {
	return r.ctx.Err() != nil ||
		(!r.deadline.IsZero() && time.Now().After(r.deadline))
}

// restore rebuilds the runner's state from a checkpoint (see Resume).
func (r *runner) restore(ck *Checkpoint) error {
	if err := ck.Validate(r.c, r.cfg, r.res.TotalFaults); err != nil {
		return err
	}
	for _, sf := range ck.Untestable {
		f, err := sf.fault(r.c)
		if err != nil {
			return err
		}
		r.untestable[f] = true
		r.res.Untestable = append(r.res.Untestable, f)
	}
	r.res.Passes = append(r.res.Passes, ck.Passes...)
	r.res.Phases = ck.Phases
	r.res.FirstPanic = ck.FirstPanic
	if ck.Obs != nil {
		if err := r.cfg.Obs.MergeMetrics(ck.Obs); err != nil {
			return fmt.Errorf("hybrid: checkpoint metrics: %w", err)
		}
	}
	r.prevElapsed = time.Duration(ck.ElapsedNS)
	r.preprocessDone = ck.PreprocessDone
	for _, sq := range ck.Quarantine {
		f, err := sq.Fault.fault(r.c)
		if err != nil {
			return err
		}
		reason, err := parseReason(sq.Reason)
		if err != nil {
			return err
		}
		q := r.captureQuarantine(f, reason)
		q.Attempts = sq.Attempts
		q.Resolved = sq.Resolved
	}

	// Replay the accumulated test set: the fault simulator re-derives the
	// detection state deterministically, and the pass's target snapshot is
	// re-taken at the exact sequence count where the pass originally began.
	for i, ss := range ck.TestSet {
		if i == ck.PassStartSeqs {
			r.resumeTargets = append([]fault.Fault(nil), r.fsim.Remaining()...)
		}
		seq, err := parseSeq(ss, len(r.c.PIs))
		if err != nil {
			return err
		}
		tf, err := ck.Targets[i].fault(r.c)
		if err != nil {
			return err
		}
		r.fsim.ApplySequence(seq)
		r.res.TestSet = append(r.res.TestSet, seq)
		r.res.Targets = append(r.res.Targets, tf)
	}
	if ck.PassStartSeqs == len(ck.TestSet) {
		r.resumeTargets = append([]fault.Fault(nil), r.fsim.Remaining()...)
	}
	r.resumeSeqs = ck.PassStartSeqs
	r.rng.Skip(ck.RNGDraws)
	r.startPass = ck.PassIndex
	r.startFault = ck.FaultIndex
	return nil
}

// run drives the schedule from the runner's (possibly restored) position.
func (r *runner) run() *Result {
	r.start = time.Now()
	r.fsim.SetObs(r.cfg.Obs)
	if r.cfg.PreprocessUntestable && !r.preprocessDone {
		if !r.preprocess() {
			return r.interrupted()
		}
		r.preprocessDone = true
	}
	for pi := r.startPass; pi < len(r.cfg.Passes); pi++ {
		pass := r.cfg.Passes[pi]
		fi0 := 0
		passStartSeqs := len(r.res.TestSet)
		var targets []fault.Fault
		if pi == r.startPass && r.resumeTargets != nil {
			fi0 = r.startFault
			targets = r.resumeTargets
			passStartSeqs = r.resumeSeqs
		} else {
			// Snapshot: faults detected mid-pass are skipped when their
			// turn comes.
			targets = append([]fault.Fault(nil), r.fsim.Remaining()...)
		}
		if !r.runPass(pi, pass, fi0, targets, passStartSeqs) {
			return r.interrupted()
		}
		remaining := 0
		for _, f := range r.fsim.Remaining() {
			if !r.untestable[f] {
				remaining++
			}
		}
		stats := PassStats{
			Pass:       pi + 1,
			Detected:   r.fsim.NumDetected(),
			Vectors:    r.fsim.NumVectors(),
			Elapsed:    r.elapsed(),
			Untestable: len(r.res.Untestable),
			Aborted:    remaining,
		}
		r.res.Passes = append(r.res.Passes, stats)
		r.cfg.Obs.Point("run", "pass_end", "", pi+1, obs.Attrs{
			"detected":   float64(stats.Detected),
			"vectors":    float64(stats.Vectors),
			"untestable": float64(stats.Untestable),
			"aborted":    float64(stats.Aborted),
		})
		r.noteBoundary(pi+1, 0, len(r.res.TestSet), true)
		if r.cfg.Continue != nil && pi < len(r.cfg.Passes)-1 && !r.cfg.Continue(stats) {
			break
		}
	}
	return r.verifyAndRetry()
}

// verifyAndRetry runs the trust-but-verify tail of a completed schedule:
// audit the detection claims, re-target quarantined faults with escalated
// budgets, and re-audit if the retry phase changed the test set. The tail
// also runs after an early stop via Config.Continue — the test set is final
// either way — but not after an interrupt, where the checkpoint takes over.
func (r *runner) verifyAndRetry() *Result {
	r.snapshotDetections()
	if r.cfg.Audit && !r.runAudit() {
		return r.interrupted()
	}
	if !r.retryQuarantined() {
		r.finalizeQuarantine()
		return r.interrupted()
	}
	if r.res.Retry.Retried > 0 {
		r.snapshotDetections()
		if r.cfg.Audit && !r.runAudit() {
			r.finalizeQuarantine()
			return r.interrupted()
		}
	}
	r.finalizeQuarantine()
	return r.res
}

func (r *runner) elapsed() time.Duration {
	return r.prevElapsed + time.Since(r.start)
}

// interrupted finalizes an interrupted run: the last consistent snapshot is
// emitted so the run can be resumed, and the partial result returned.
func (r *runner) interrupted() *Result {
	r.res.Interrupted = true
	if r.cfg.Checkpoint != nil && r.lastSnap != nil {
		r.cfg.Checkpoint(r.lastSnap)
	}
	return r.res
}

// noteBoundary records a fault-boundary snapshot (position = next fault to
// target) and emits it on the configured cadence; force emits regardless.
func (r *runner) noteBoundary(pi, fi, passStartSeqs int, force bool) {
	if r.cfg.Checkpoint == nil {
		return
	}
	r.lastSnap = r.snapshot(pi, fi, passStartSeqs)
	r.sinceCkpt++
	if force || r.sinceCkpt >= r.cfg.CheckpointEvery {
		r.sinceCkpt = 0
		r.cfg.Checkpoint(r.lastSnap)
	}
}

// snapshot captures the run state at a fault boundary. Sequence and fault
// slices are converted to their serialized forms, so the snapshot shares no
// mutable state with the runner.
func (r *runner) snapshot(pi, fi, passStartSeqs int) *Checkpoint {
	ck := &Checkpoint{
		Version:        CheckpointVersion,
		Circuit:        r.c.Name,
		Fingerprint:    r.fp,
		Seed:           r.cfg.Seed,
		TotalFaults:    r.res.TotalFaults,
		PassIndex:      pi,
		FaultIndex:     fi,
		PassStartSeqs:  passStartSeqs,
		PreprocessDone: r.preprocessDone,
		RNGDraws:       r.rng.Draws(),
		ElapsedNS:      int64(r.elapsed()),
		Targets:        saveFaults(r.res.Targets),
		Untestable:     saveFaults(r.res.Untestable),
		Passes:         append([]PassStats(nil), r.res.Passes...),
		Phases:         r.res.Phases,
		FirstPanic:     r.res.FirstPanic,
		Obs:            r.cfg.Obs.MetricsSnapshot(),
	}
	ck.TestSet = make([][]string, len(r.res.TestSet))
	for i, seq := range r.res.TestSet {
		ck.TestSet[i] = saveSeq(seq)
	}
	for _, q := range r.quarOrder {
		ck.Quarantine = append(ck.Quarantine, SavedQuarantine{
			Fault:    saveFault(q.Fault),
			Reason:   q.Reason.String(),
			Attempts: q.Attempts,
			Resolved: q.Resolved,
		})
	}
	return ck
}

// guard runs fn inside a recover boundary: a panic in the engines marks the
// current fault aborted instead of killing the run. The first stack trace
// is kept for the report; every recovered panic is counted.
func (r *runner) guard(fn func()) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.res.Phases.Panics++
			if r.res.FirstPanic == "" {
				r.res.FirstPanic = fmt.Sprintf("%v\n\n%s", p, debug.Stack())
			}
			ok = false
		}
	}()
	fn()
	return true
}

// preprocess runs a cheap exhaustive screen over the fault list and marks
// faults whose excitation or propagation provably cannot succeed (the
// "filter untestable faults in advance" speedup from the paper's
// conclusions). The screen uses a two-frame window — untestability proofs
// are frame-independent (exhaustion without a fault effect crossing the
// window boundary) — and a small backtrack budget so screening stays cheap.
// The run context bounds the whole screen: cancellation (or the run
// deadline) stops it between faults and aborts the in-flight search.
// It returns false when interrupted.
func (r *runner) preprocess() bool {
	sp := r.cfg.Obs.StartSpan("preprocess", "", 0)
	screened := len(r.fsim.Remaining())
	for _, f := range r.fsim.Remaining() {
		if r.expired() {
			sp.End("interrupted", nil)
			return false
		}
		var res atpg.Result
		if !r.guard(func() {
			res = r.engine.GenerateCtx(r.ctx, f, atpg.Limits{MaxFrames: 2, MaxBacktracks: 256})
		}) {
			continue
		}
		if res.Status == atpg.Untestable {
			r.untestable[f] = true
			r.res.Untestable = append(r.res.Untestable, f)
			r.res.Phases.Preprocessed++
		}
	}
	sp.End("done", obs.Attrs{
		"screened":   float64(screened),
		"untestable": float64(r.res.Phases.Preprocessed),
	})
	return true
}

// runPass targets every still-undetected, not-proven-untestable fault once,
// starting at fi0 within the pass's target snapshot. It returns false when
// the run context was cancelled.
func (r *runner) runPass(pi int, pass Pass, fi0 int, targets []fault.Fault, passStartSeqs int) bool {
	if pass.JustifyAttempts < 1 {
		pass.JustifyAttempts = 1
	}
	remaining := make(map[fault.Fault]bool, len(r.fsim.Remaining()))
	for _, f := range r.fsim.Remaining() {
		remaining[f] = true
	}
	// Restrict to targets still undetected now; on a fresh pass this is the
	// whole snapshot, on a resumed pass it excludes faults detected by the
	// replayed mid-pass sequences.
	stillRemaining := make(map[fault.Fault]bool, len(targets))
	for _, f := range targets {
		if remaining[f] {
			stillRemaining[f] = true
		}
	}
	passT0 := time.Now()
	for fi := fi0; fi < len(targets); fi++ {
		if r.expired() {
			return false
		}
		f := targets[fi]
		if !stillRemaining[f] || r.untestable[f] {
			continue
		}
		sp := r.cfg.Obs.StartSpan("target", r.faultLabel(f), pi+1)
		var newly []fault.Fault
		var accepted bool
		ok := r.guard(func() { newly, accepted = r.targetFault(f, pass, pi+1) })
		if r.expired() {
			// The run context died while this fault's search was in flight,
			// possibly clipping it mid-search. Its outcome is not what an
			// uninterrupted run would have computed, so it must not reach
			// the checkpoint stream: interrupt here and let the previous
			// boundary's snapshot stand as the last consistent state.
			sp.End("interrupted", nil)
			return false
		}
		switch {
		case !ok:
			r.quarantineFault(f, ReasonPanic)
			sp.End("panic", nil)
		case accepted:
			for _, g := range newly {
				delete(stillRemaining, g)
			}
			sp.End("detected", obs.Attrs{"newly": float64(len(newly))})
		case r.untestable[f]:
			sp.End("untestable", nil)
		default:
			// Undecided: the fault's budget expired without a test or an
			// untestability proof. Quarantine it for the end-of-run retry.
			r.quarantineFault(f, ReasonBudget)
			sp.End("undecided", nil)
		}
		r.noteBoundary(pi, fi+1, passStartSeqs, false)
		if r.cfg.Progress != nil {
			done := fi + 1 - fi0
			var eta time.Duration
			if done > 0 {
				eta = time.Duration(int64(time.Since(passT0)) / int64(done) * int64(len(targets)-fi-1))
			}
			r.cfg.Progress(Progress{
				Pass:        pi + 1,
				PassCount:   len(r.cfg.Passes),
				FaultIndex:  fi + 1,
				PassTargets: len(targets),
				Detected:    r.fsim.NumDetected(),
				TotalFaults: r.res.TotalFaults,
				Vectors:     r.fsim.NumVectors(),
				Elapsed:     r.elapsed(),
				ETA:         eta,
			})
		}
	}
	return true
}

// targetFault runs the Fig. 1 flow for one fault. It returns the faults
// newly detected by an accepted test, plus whether a test was accepted at
// all — false means the fault ended the attempt undecided (budget expired
// or proven untestable; the caller distinguishes via r.untestable). The
// fault's whole budget — the pass's wall-clock allowance and the run
// context — is carried by a derived context; the engine folds it into its
// search budget.
func (r *runner) targetFault(f fault.Fault, pass Pass, passNo int) ([]fault.Fault, bool) {
	fctx := r.ctx
	if pass.TimePerFault > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithDeadline(r.ctx, time.Now().Add(pass.TimePerFault))
		defer cancel()
	}
	lim := atpg.Limits{
		MaxFrames:     r.cfg.MaxFrames,
		MaxBacktracks: pass.MaxBacktracks,
	}
	r.res.Phases.Targeted++
	label := r.faultLabel(f)

	for attempt := 0; attempt < pass.JustifyAttempts; attempt++ {
		if attempt > 0 {
			r.res.Phases.PropBacktracks++
		}
		epsp := r.cfg.Obs.StartSpan("excite_prop", label, passNo)
		gen := r.engine.GenerateNthCtx(fctx, f, lim, attempt)
		switch gen.Status {
		case atpg.Untestable:
			epsp.End("untestable", nil)
			if attempt == 0 && !r.untestable[f] {
				r.untestable[f] = true
				r.res.Untestable = append(r.res.Untestable, f)
			}
			return nil, false
		case atpg.Aborted:
			epsp.End("aborted", nil)
			return nil, false
		}
		r.res.Phases.ExciteProp++
		epsp.End("success", obs.Attrs{
			"attempt":    float64(attempt),
			"backtracks": float64(gen.Backtracks),
			"frames":     float64(gen.Frames),
		})

		seq, ok := r.justifyAndBuild(fctx, f, pass, passNo, gen)
		if !ok {
			if fctx.Err() != nil {
				return nil, false
			}
			continue // backtrack into propagation: try the next solution
		}

		// Confirm with the independent fault simulator before counting.
		vsp := r.cfg.Obs.StartSpan("verify", label, passNo)
		det, _ := faultsim.DetectsFrom(r.c, f, r.fsim.GoodState(), nil, seq)
		if !det {
			vsp.End("reject", obs.Attrs{"seq_len": float64(len(seq))})
			r.res.Phases.VerifyFailures++
			if fctx.Err() != nil {
				return nil, false
			}
			continue
		}
		vsp.End("accept", obs.Attrs{"seq_len": float64(len(seq))})
		r.cfg.Obs.Observe("seq_len", float64(len(seq)))
		r.res.TestSet = append(r.res.TestSet, seq)
		r.res.Targets = append(r.res.Targets, f)
		newly := r.fsim.ApplySequence(seq)
		// Incidental = detected without being this attempt's target. When an
		// audit-demoted fault is re-targeted it is no longer in the
		// simulator's fault list, so the target may be absent from newly.
		incidental := 0
		for _, g := range newly {
			if g != f {
				incidental++
			}
		}
		r.res.Phases.IncidentalDetects += incidental
		if incidental > 0 {
			r.cfg.Obs.Counter("incidental_detects", int64(incidental))
		}
		return newly, true
	}
	return nil, false
}

// justifyAndBuild runs state justification for one propagation solution and,
// on success, assembles the full candidate test sequence (justification
// prefix + excitation/propagation vectors, X positions filled randomly).
func (r *runner) justifyAndBuild(ctx context.Context, f fault.Fault, pass Pass, passNo int, gen atpg.Result) ([]logic.Vector, bool) {
	label := r.faultLabel(f)
	var prefix []logic.Vector
	switch pass.Method {
	case MethodGA:
		r.res.Phases.GAJustifyCalls++
		sp := r.cfg.Obs.StartSpan("ga_justify", label, passNo)
		req := justify.Request{
			TargetGood:   gen.RequiredGood,
			TargetFaulty: gen.RequiredFaulty,
			Fault:        &f,
			StartGood:    r.fsim.GoodState(),
		}
		jres := justify.GACtx(ctx, r.c, req, justify.Options{
			Population:  pass.Population,
			Generations: pass.Generations,
			SeqLen:      pass.SeqLen,
			WeightGood:  r.cfg.WeightGood,
			Seed:        r.rng.Int63(),
			Selection:   r.cfg.Selection,
			Crossover:   r.cfg.Crossover,
			Overlapping: r.cfg.Overlapping,
			Hooks:       r.cfg.Hooks,
			Obs:         r.cfg.Obs,
			ObsFault:    label,
			ObsPass:     passNo,
		})
		if !jres.Found {
			sp.End("miss", obs.Attrs{
				"generations": float64(jres.Generations),
				"evaluations": float64(jres.Evaluations),
			})
			return nil, false
		}
		r.res.Phases.GAJustifyFound++
		sp.End("found", obs.Attrs{
			"generations": float64(jres.Generations),
			"evaluations": float64(jres.Evaluations),
			"seq_len":     float64(len(jres.Sequence)),
		})
		prefix = jres.Sequence
	case MethodDet:
		r.res.Phases.DetJustifyCalls++
		sp := r.cfg.Obs.StartSpan("det_justify", label, passNo)
		lim := atpg.Limits{
			MaxFrames:     r.cfg.MaxFrames,
			MaxBacktracks: pass.MaxBacktracks,
		}
		var jres atpg.JustifyResult
		if r.cfg.FaultFreeJustify {
			jres = r.engine.JustifyCtx(ctx, gen.RequiredGood, lim)
		} else {
			jres = r.engine.JustifyDualCtx(ctx, f, gen.RequiredGood, gen.RequiredFaulty, lim)
		}
		if jres.Status != atpg.Success {
			sp.End("miss", obs.Attrs{"backtracks": float64(jres.Backtracks)})
			return nil, false
		}
		r.res.Phases.DetJustifyFound++
		sp.End("found", obs.Attrs{
			"backtracks": float64(jres.Backtracks),
			"frames":     float64(jres.Frames),
		})
		prefix = r.fillX(jres.Vectors)
	}
	seq := make([]logic.Vector, 0, len(prefix)+len(gen.Vectors))
	seq = append(seq, prefix...)
	seq = append(seq, r.fillX(gen.Vectors)...)
	return seq, true
}

// fillX replaces unassigned input bits with random binary values; random
// fill maximizes incidental fault detection, which the fault simulator then
// credits.
func (r *runner) fillX(seq []logic.Vector) []logic.Vector {
	out := make([]logic.Vector, len(seq))
	for i, v := range seq {
		w := v.Clone()
		for j := range w {
			if w[j] == logic.X {
				w[j] = logic.FromBit(uint64(r.rng.Intn(2)))
			}
		}
		out[i] = w
	}
	return out
}
