package pattern

import (
	"strings"
	"testing"

	"gahitec/internal/logic"
)

func mustVec(t *testing.T, s string) logic.Vector {
	t.Helper()
	v, err := logic.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sample(t *testing.T) *Set {
	return &Set{
		Circuit: "s298",
		Inputs:  []string{"in0", "in1", "in2"},
		Sequences: []Sequence{
			{Target: "G11 s-a-0", Vectors: []logic.Vector{mustVec(t, "010"), mustVec(t, "11X")}},
			{Vectors: []logic.Vector{mustVec(t, "001")}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample(t)
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Circuit != "s298" || len(got.Inputs) != 3 {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Sequences) != 2 {
		t.Fatalf("sequences = %d", len(got.Sequences))
	}
	if got.Sequences[0].Target != "G11 s-a-0" {
		t.Errorf("target = %q", got.Sequences[0].Target)
	}
	if got.Sequences[1].Target != "" {
		t.Errorf("untargeted sequence got %q", got.Sequences[1].Target)
	}
	if got.Sequences[0].Vectors[1].String() != "11X" {
		t.Error("vector corrupted")
	}
	if got.NumVectors() != 3 {
		t.Errorf("NumVectors = %d", got.NumVectors())
	}
}

func TestReadBareVectorList(t *testing.T) {
	src := "010\n111\nX00\n"
	s, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sequences) != 1 || len(s.Sequences[0].Vectors) != 3 {
		t.Fatalf("bare list parsed as %+v", s)
	}
}

func TestReadRejectsMixedWidth(t *testing.T) {
	if _, err := Read(strings.NewReader("010\n01\n")); err == nil {
		t.Fatal("mixed widths accepted")
	}
}

func TestReadRejectsBadChars(t *testing.T) {
	if _, err := Read(strings.NewReader("01?\n")); err == nil {
		t.Fatal("invalid character accepted")
	}
}

func TestFlattenOrder(t *testing.T) {
	s := sample(t)
	flat := s.Flatten()
	if len(flat) != 3 || flat[0].String() != "010" || flat[2].String() != "001" {
		t.Fatalf("flatten wrong: %v", flat)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "# arbitrary comment\n# circuit: x\nseq 1\n01\n# mid comment\n10\n"
	s, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Circuit != "x" || len(s.Sequences[0].Vectors) != 2 {
		t.Fatalf("comment handling wrong: %+v", s)
	}
}
