// Package pattern defines the on-disk test-set format: a plain-text,
// comment-annotated container for the sequences a test generator produces.
// The format is a strict superset of a bare vector list (one 0/1/X string
// per line), so fault simulators that only care about vectors can ignore
// the structure:
//
//	# circuit: s298
//	# inputs: in0 in1 in2
//	seq 1 target "G11 s-a-0"
//	010
//	110
//	seq 2
//	001
package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gahitec/internal/logic"
)

// Sequence is one test: a vector run with an optional annotation naming the
// fault it was generated for.
type Sequence struct {
	Target  string // e.g. "G11 s-a-0"; empty for incidental/random tests
	Vectors []logic.Vector
}

// Set is a complete test set.
type Set struct {
	Circuit   string
	Inputs    []string // primary input names, in vector order
	Sequences []Sequence
}

// NumVectors counts all vectors.
func (s *Set) NumVectors() int {
	n := 0
	for _, q := range s.Sequences {
		n += len(q.Vectors)
	}
	return n
}

// Flatten concatenates all sequences.
func (s *Set) Flatten() []logic.Vector {
	out := make([]logic.Vector, 0, s.NumVectors())
	for _, q := range s.Sequences {
		out = append(out, q.Vectors...)
	}
	return out
}

// Write serializes the set.
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# circuit: %s\n", s.Circuit)
	if len(s.Inputs) > 0 {
		fmt.Fprintf(bw, "# inputs: %s\n", strings.Join(s.Inputs, " "))
	}
	for i, q := range s.Sequences {
		if q.Target != "" {
			fmt.Fprintf(bw, "seq %d target %q\n", i+1, q.Target)
		} else {
			fmt.Fprintf(bw, "seq %d\n", i+1)
		}
		for _, v := range q.Vectors {
			fmt.Fprintln(bw, v)
		}
	}
	return bw.Flush()
}

// Read parses a set. Bare vector lists (no seq headers) load as one
// sequence.
func Read(r io.Reader) (*Set, error) {
	s := &Set{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Sequence
	lineNo := 0
	width := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# circuit:"):
			s.Circuit = strings.TrimSpace(strings.TrimPrefix(line, "# circuit:"))
			continue
		case strings.HasPrefix(line, "# inputs:"):
			s.Inputs = strings.Fields(strings.TrimPrefix(line, "# inputs:"))
			continue
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "seq"):
			target := ""
			if i := strings.Index(line, "target"); i >= 0 {
				t := strings.TrimSpace(line[i+len("target"):])
				if unq, err := strconv.Unquote(t); err == nil {
					target = unq
				} else {
					target = t
				}
			}
			s.Sequences = append(s.Sequences, Sequence{Target: target})
			cur = &s.Sequences[len(s.Sequences)-1]
			continue
		}
		v, err := logic.ParseVector(line)
		if err != nil {
			return nil, fmt.Errorf("pattern: line %d: %v", lineNo, err)
		}
		if width < 0 {
			width = len(v)
		} else if len(v) != width {
			return nil, fmt.Errorf("pattern: line %d: width %d, expected %d", lineNo, len(v), width)
		}
		if cur == nil {
			s.Sequences = append(s.Sequences, Sequence{})
			cur = &s.Sequences[len(s.Sequences)-1]
		}
		cur.Vectors = append(cur.Vectors, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
