package fault

import (
	"testing"

	"gahitec/internal/bench"
	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

func mustParse(t *testing.T, src, name string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func TestAllSingleAnd(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and1")
	fs := All(c)
	// Three stems (a, b, y), no fanout branches: 6 faults.
	if len(fs) != 6 {
		t.Fatalf("All = %d faults, want 6", len(fs))
	}
	for _, f := range fs {
		if !f.IsStem() {
			t.Errorf("unexpected branch fault %s", f.String(c))
		}
	}
}

func TestCollapseSingleAnd(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and1")
	fs := Collapse(c)
	// {a0,b0,y0}, {a1}, {b1}, {y1} -> 4 classes.
	if len(fs) != 4 {
		t.Fatalf("Collapse = %d classes, want 4", len(fs))
	}
}

func TestCollapseInverterChain(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = NOT(n)\n", "inv2")
	fs := Collapse(c)
	// {a0,n1,y0}, {a1,n0,y1} -> 2 classes.
	if len(fs) != 2 {
		t.Fatalf("Collapse = %d classes, want 2", len(fs))
	}
}

func TestBranchFaultsCreatedOnFanout(t *testing.T) {
	// a drives both gates: two branch sites plus stems.
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n"
	c := mustParse(t, src, "fan")
	fs := All(c)
	branches := 0
	for _, f := range fs {
		if !f.IsStem() {
			branches++
		}
	}
	// a and b each feed 2 readers: 4 branch pins x 2 polarities = 8.
	if branches != 8 {
		t.Fatalf("branch faults = %d, want 8", branches)
	}
}

func TestCollapseDoesNotMergeAcrossFanout(t *testing.T) {
	// y = AND(a,b), z = AND(a,c): a's branch s-a-0 at y and at z are distinct
	// classes; neither merges with the stem of a.
	src := "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = AND(a, c)\n"
	c := mustParse(t, src, "fan2")
	reps := Collapse(c)
	aID, _ := c.Lookup("a")
	foundStem0 := false
	for _, f := range reps {
		if f.Node == aID && f.IsStem() && f.Stuck == logic.Zero {
			foundStem0 = true
		}
	}
	if !foundStem0 {
		t.Error("a s-a-0 stem must remain its own class (branches do not merge across the stem)")
	}
}

func TestXorNoCollapse(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x1")
	if got := len(Collapse(c)); got != 6 {
		t.Fatalf("XOR collapsed to %d, want 6 (no equivalences)", got)
	}
}

func TestS27FaultCounts(t *testing.T) {
	c := mustParse(t, s27, "s27")
	all := All(c)
	col := Collapse(c)
	if len(col) >= len(all) {
		t.Fatalf("collapsing did not reduce: %d vs %d", len(col), len(all))
	}
	// The exact collapsed size depends on the collapsing scheme; the
	// classic checkpoint-based count for s27 is 32. Ours must be in a sane
	// neighbourhood and strictly positive.
	if len(col) < 20 || len(col) > 60 {
		t.Errorf("s27 collapsed faults = %d, expected roughly 32", len(col))
	}
	// Determinism.
	col2 := Collapse(c)
	for i := range col {
		if col[i] != col2[i] {
			t.Fatal("Collapse not deterministic")
		}
	}
}

func TestNoFaultsOnConstants(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n", "k")
	kID, _ := c.Lookup("k")
	for _, f := range All(c) {
		if f.Node == kID && f.IsStem() {
			t.Fatal("stem fault on a constant node")
		}
	}
}

func TestFaultString(t *testing.T) {
	c := mustParse(t, s27, "s27")
	g11, _ := c.Lookup("G11")
	f := Fault{g11, StemPin, logic.Zero}
	if f.String(c) != "G11 s-a-0" {
		t.Errorf("String = %q", f.String(c))
	}
	g8, _ := c.Lookup("G8")
	f2 := Fault{g8, 1, logic.One}
	if f2.String(c) != "G8.in1 s-a-1" {
		t.Errorf("String = %q", f2.String(c))
	}
}

func TestLessOrdering(t *testing.T) {
	a := Fault{1, StemPin, logic.Zero}
	b := Fault{1, StemPin, logic.One}
	c := Fault{1, 0, logic.Zero}
	d := Fault{2, StemPin, logic.Zero}
	if !a.Less(b) || !a.Less(c) || !a.Less(d) || b.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestAllDeterministicSorted(t *testing.T) {
	c := mustParse(t, s27, "s27")
	fs := All(c)
	for i := 1; i < len(fs); i++ {
		if !fs[i-1].Less(fs[i]) {
			t.Fatal("All not strictly sorted")
		}
	}
}
