// Package fault defines the single stuck-at fault model: fault sites, full
// fault-list enumeration and structural equivalence collapsing. Fault sites
// follow standard practice: one pair of faults per stem (gate output) and one
// pair per fanout branch (a gate input pin whose driver feeds more than one
// reader). Fanout-free gate inputs are the same physical line as the driving
// stem and are not separate sites.
package fault

import (
	"fmt"
	"sort"

	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

// Fault is a single stuck-at fault. Pin == StemPin means the fault is on the
// node's output stem; otherwise it is on input pin Pin of node Node (a
// fanout branch).
type Fault struct {
	Node  netlist.ID
	Pin   int
	Stuck logic.V // Zero or One
}

// StemPin marks an output-stem fault.
const StemPin = -1

// IsStem reports whether the fault is on an output stem.
func (f Fault) IsStem() bool { return f.Pin == StemPin }

// Site returns the node whose *value* is directly affected: for a stem fault
// the faulty node itself, for a pin fault the reading gate.
func (f Fault) Site() netlist.ID { return f.Node }

// String renders the fault in conventional notation, e.g. "G11 s-a-0" or
// "G9.in1 s-a-1".
func (f Fault) String(c *netlist.Circuit) string {
	name := c.Nodes[f.Node].Name
	if f.IsStem() {
		return fmt.Sprintf("%s s-a-%s", name, f.Stuck)
	}
	return fmt.Sprintf("%s.in%d s-a-%s", name, f.Pin, f.Stuck)
}

// Less orders faults deterministically: by node, then pin, then stuck value.
func (f Fault) Less(g Fault) bool {
	if f.Node != g.Node {
		return f.Node < g.Node
	}
	if f.Pin != g.Pin {
		return f.Pin < g.Pin
	}
	return f.Stuck < g.Stuck
}

// All enumerates the full (uncollapsed) fault list: both stuck-at faults on
// every stem and on every fanout branch. Constant nodes get no stem faults
// (a constant line stuck at its own value is undetectable by definition and
// stuck at the opposite value is the constant's complement, modeled on the
// reading pins).
func All(c *netlist.Circuit) []Fault {
	var fs []Fault
	for i := range c.Nodes {
		id := netlist.ID(i)
		k := c.Nodes[i].Kind
		if k == netlist.KConst0 || k == netlist.KConst1 {
			continue
		}
		fs = append(fs, Fault{id, StemPin, logic.Zero}, Fault{id, StemPin, logic.One})
	}
	for i := range c.Nodes {
		id := netlist.ID(i)
		for pin, drv := range c.Nodes[i].Fanin {
			if len(c.Fanouts[drv]) > 1 {
				fs = append(fs, Fault{id, pin, logic.Zero}, Fault{id, pin, logic.One})
			}
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].Less(fs[b]) })
	return fs
}

// Collapse performs structural equivalence collapsing on the full fault list
// and returns one representative per equivalence class, deterministically
// ordered. The classic gate-level equivalences are applied:
//
//	AND : any input s-a-0  ≡ output s-a-0
//	NAND: any input s-a-0  ≡ output s-a-1
//	OR  : any input s-a-1  ≡ output s-a-1
//	NOR : any input s-a-1  ≡ output s-a-0
//	NOT : input s-a-v      ≡ output s-a-v̄
//	BUF : input s-a-v      ≡ output s-a-v
//	DFF : D input s-a-v    ≡ Q output s-a-v (one frame later; equivalent
//	      for detection in sequential operation)
//
// An "input" fault here is the fault on the line feeding the pin: the branch
// fault if the pin is a fanout branch, else the driver's stem fault. Branch
// faults never merge across the fanout stem.
func Collapse(c *netlist.Circuit) []Fault {
	all := All(c)
	index := make(map[Fault]int, len(all))
	for i, f := range all {
		index[f] = i
	}
	parent := make([]int, len(all))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	// inputFault returns the index of the fault on the line feeding pin p of
	// node g, stuck at v, or -1 if that site doesn't exist.
	inputFault := func(g netlist.ID, p int, v logic.V) int {
		drv := c.Nodes[g].Fanin[p]
		var f Fault
		if len(c.Fanouts[drv]) > 1 {
			f = Fault{g, p, v}
		} else {
			f = Fault{drv, StemPin, v}
		}
		if i, ok := index[f]; ok {
			return i
		}
		return -1
	}
	outFault := func(g netlist.ID, v logic.V) int {
		if i, ok := index[Fault{g, StemPin, v}]; ok {
			return i
		}
		return -1
	}

	for i := range c.Nodes {
		g := netlist.ID(i)
		var inVal logic.V // controlling value at input
		var outVal logic.V
		switch c.Nodes[i].Kind {
		case netlist.KAnd:
			inVal, outVal = logic.Zero, logic.Zero
		case netlist.KNand:
			inVal, outVal = logic.Zero, logic.One
		case netlist.KOr:
			inVal, outVal = logic.One, logic.One
		case netlist.KNor:
			inVal, outVal = logic.One, logic.Zero
		case netlist.KBuf, netlist.KDFF:
			// Both polarities pass through.
			for _, v := range []logic.V{logic.Zero, logic.One} {
				if in, out := inputFault(g, 0, v), outFault(g, v); in >= 0 && out >= 0 {
					union(in, out)
				}
			}
			continue
		case netlist.KNot:
			for _, v := range []logic.V{logic.Zero, logic.One} {
				if in, out := inputFault(g, 0, v), outFault(g, v.Not()); in >= 0 && out >= 0 {
					union(in, out)
				}
			}
			continue
		default:
			continue // XOR/XNOR/INPUT/CONST: no equivalences
		}
		out := outFault(g, outVal)
		if out < 0 {
			continue
		}
		for p := range c.Nodes[i].Fanin {
			if in := inputFault(g, p, inVal); in >= 0 {
				union(in, out)
			}
		}
	}

	var reps []Fault
	for i := range all {
		if find(i) == i {
			reps = append(reps, all[i])
		}
	}
	return reps
}
