package fault

import (
	"testing"

	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

func TestSite(t *testing.T) {
	stem := Fault{Node: 3, Pin: StemPin, Stuck: logic.Zero}
	pin := Fault{Node: 5, Pin: 1, Stuck: logic.One}
	if stem.Site() != 3 || pin.Site() != 5 {
		t.Fatal("Site wrong")
	}
	if !stem.IsStem() || pin.IsStem() {
		t.Fatal("IsStem wrong")
	}
}

func TestInjectedCircuitStemStructure(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = AND(a, b)\ny = OR(n, b)\n", "m")
	n, _ := c.Lookup("n")
	mut, err := InjectedCircuit(c, Fault{Node: n, Pin: StemPin, Stuck: logic.One})
	if err != nil {
		t.Fatal(err)
	}
	// The public name n must now be an OR wrapper of n__orig and a const.
	id, ok := mut.Lookup("n")
	if !ok {
		t.Fatal("wrapper missing")
	}
	if mut.Nodes[id].Kind != netlist.KOr {
		t.Fatalf("wrapper kind %s", mut.Nodes[id].Kind)
	}
	if _, ok := mut.Lookup("n__orig"); !ok {
		t.Fatal("original node not preserved")
	}
	// Same interface.
	if len(mut.PIs) != len(c.PIs) || len(mut.POs) != len(c.POs) {
		t.Fatal("interface changed")
	}
}

func TestInjectedCircuitPinStructure(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n", "m2")
	y, _ := c.Lookup("y")
	mut, err := InjectedCircuit(c, Fault{Node: y, Pin: 0, Stuck: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	// Only pin 0 of y is redirected; z still reads 'a' directly.
	my, _ := mut.Lookup("y")
	mz, _ := mut.Lookup("z")
	ma, _ := mut.Lookup("a")
	if mut.Nodes[my].Fanin[0] == ma {
		t.Fatal("pin fault not wrapped")
	}
	if mut.Nodes[mz].Fanin[0] != ma {
		t.Fatal("unrelated pin rewired")
	}
	wrap := mut.Nodes[my].Fanin[0]
	if mut.Nodes[wrap].Kind != netlist.KAnd {
		t.Fatalf("s-a-0 wrapper kind %s", mut.Nodes[wrap].Kind)
	}
}

func TestInjectedCircuitOnDFF(t *testing.T) {
	c := mustParse(t, "INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = BUF(q)\n", "m3")
	q, _ := c.Lookup("q")
	mut, err := InjectedCircuit(c, Fault{Node: q, Pin: StemPin, Stuck: logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if len(mut.DFFs) != 1 {
		t.Fatal("flip-flop count changed")
	}
	mq, _ := mut.Lookup("q")
	if mut.Nodes[mq].Kind != netlist.KAnd {
		t.Fatalf("stuck-0 FF wrapper kind %s", mut.Nodes[mq].Kind)
	}
}
