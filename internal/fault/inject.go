package fault

import (
	"fmt"

	"gahitec/internal/logic"
	"gahitec/internal/netlist"
)

// InjectedCircuit returns a structurally modified copy of c in which fault f
// is permanently present, using the PROOFS construction the paper describes:
// an OR gate with a constant-one side input models stuck-at-one, an AND gate
// with a constant-zero side input models stuck-at-zero. Simulating the
// returned circuit with a fault-free simulator must behave identically to
// simulating c with f injected — the property tests use this as an
// independent oracle for the simulators' built-in fault injection.
func InjectedCircuit(c *netlist.Circuit, f Fault) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(c.Name + "+" + f.String(c))

	// For a stem fault the faulty node is renamed and a wrapper gate takes
	// its public name, so every reader (and the PO list) picks up the faulty
	// value. For a pin fault only the one fanin reference is redirected.
	const origSuffix = "__orig"
	stem := f.IsStem()
	faultyName := c.Nodes[f.Node].Name

	// declName is used when declaring a node (the faulty node is renamed so
	// the wrapper can take its public name); references always use the
	// public name, so readers see the wrapped (faulty) value.
	declName := func(id netlist.ID) string {
		if stem && id == f.Node {
			return c.Nodes[id].Name + origSuffix
		}
		return c.Nodes[id].Name
	}
	refName := func(id netlist.ID) string { return c.Nodes[id].Name }

	constName := "__fault_const"
	b.Const(constName, f.Stuck == logic.One)

	wrapKind := netlist.KAnd
	if f.Stuck == logic.One {
		wrapKind = netlist.KOr
	}

	for i := range c.Nodes {
		id := netlist.ID(i)
		n := &c.Nodes[i]
		refs := make([]netlist.ID, len(n.Fanin))
		for p, fi := range n.Fanin {
			if !stem && id == f.Node && p == f.Pin {
				// Branch fault: this pin reads a private wrapped copy.
				wrapped := fmt.Sprintf("__fault_pin_%s_%d", n.Name, p)
				refs[p] = b.Gate(wrapKind, wrapped, b.Ref(refName(fi)), b.Ref(constName))
				continue
			}
			refs[p] = b.Ref(refName(fi))
		}
		switch n.Kind {
		case netlist.KInput:
			b.Input(declName(id))
		case netlist.KDFF:
			b.DFF(declName(id), refs[0])
		case netlist.KConst0, netlist.KConst1:
			b.Const(declName(id), n.Kind == netlist.KConst1)
		default:
			b.Gate(n.Kind, declName(id), refs...)
		}
	}
	if stem {
		b.Gate(wrapKind, faultyName, b.Ref(faultyName+origSuffix), b.Ref(constName))
	}
	for _, po := range c.POs {
		b.Output(c.Nodes[po].Name)
	}
	return b.Build()
}
